"""Sharded sweep service: coordinator, crash-surviving workers, shard merge.

The fifth engine layer turns the process-pool executor into a *fleet*:
sweep cells are enqueued as leases on a :class:`~repro.engine.queue.LeaseQueue`,
N worker **processes** (:func:`run_worker`, spawned via the
``repro serve-sweep`` / ``repro work`` CLI pair) pull cells, execute them
through the exact per-cell paths the serial engine uses
(:func:`~repro.engine.executor.execute_cell`), and append records to
*per-worker sharded store directories*; a merger
(:func:`merge_shards`) folds the shards back into one canonical
:class:`~repro.engine.store.ResultStore` keyed by the sweep's content key.

The correctness contract is the one PR 1 established for the process
pool, extended one ring out: **serial ≡ parallel ≡ distributed**.  Every
cell derives all of its randomness from the sweep's root seed, so it does
not matter which worker runs it, how many times it runs, or in what
order — the merged store is bit-identical (per canonical record bytes)
to a serial sweep of the same config, *including* runs where workers are
SIGKILLed mid-cell and their leases are reclaimed.  Duplicate
completions (a stalled worker presumed dead that later finishes anyway)
are resolved first-by-cell-key in deterministic shard order, and the
byte-identity of the discarded copy is *asserted*
(:class:`~repro.engine.store.ShardDivergenceError`), which doubles as a
corruption/nondeterminism detector.

Failure handling in one line each (the full matrix lives in
``docs/sweep_service.md``):

* worker dies mid-cell → its lease heartbeat goes stale, a surviving
  worker reclaims and re-executes;
* every worker dies → the coordinator respawns replacements (bounded);
* coordinator dies → completed shards survive on disk; the next
  ``serve-sweep`` merges them before enqueueing only what is missing;
* a shard record disagrees with the canonical store → the merge raises,
  nothing is silently overwritten.

The streaming aggregator (:func:`publish_partial_report`) renders the
partial sweep table after every completed cell, and service telemetry
(queue depth, reclamations, per-worker throughput — built on the PR 6
telemetry conventions via
:func:`repro.observability.telemetry.service_telemetry`) lands in
``<queue>/telemetry.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.engine.executor import (
    CellKey,
    CellRecord,
    execute_cell,
    expand_grid,
)
from repro.engine.queue import (
    DEFAULT_PRIORITY,
    LeaseLost,
    LeaseQueue,
    QueueFull,
    QueueStats,
)
from repro.engine.store import (
    ResultStore,
    atomic_write_text,
    canonical_record_bytes,
    content_key,
)
from repro.observability.metrics import Counter, MetricsRegistry
from repro.observability.server import MetricsServer

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids a layer cycle
    from repro.experiments.config import ExperimentConfig

__all__ = [
    "config_from_payload",
    "config_payload",
    "diff_stores",
    "enqueue_grid",
    "merge_shards",
    "publish_partial_report",
    "run_distributed_sweep",
    "run_sweep_daemon",
    "run_worker",
    "service_manifest",
    "shards_root",
    "worker_store",
]


def config_payload(config: "ExperimentConfig") -> dict:
    """The full, explicit JSON form of a sweep config.

    Unlike the store's content-key payload (which omits defaults for
    back-compat), this round-trips *every* field, so a worker process
    reconstructs exactly the coordinator's config — and the content key
    it derives is asserted against the manifest's.
    """
    return {
        "sizes": list(config.sizes),
        "epsilon": config.epsilon,
        "trials": config.trials,
        "radius_constant": config.radius_constant,
        "field": config.field,
        "root_seed": config.root_seed,
        "algorithms": list(config.algorithms),
        "topology": config.topology,
        "faults": config.faults,
        "fields": config.fields,
        "workload": config.workload,
    }


def config_from_payload(payload: Mapping) -> "ExperimentConfig":
    """Inverse of :func:`config_payload` (the worker-side entry)."""
    from repro.experiments.config import ExperimentConfig

    return ExperimentConfig(
        sizes=tuple(int(n) for n in payload["sizes"]),
        epsilon=float(payload["epsilon"]),
        trials=int(payload["trials"]),
        radius_constant=float(payload["radius_constant"]),
        field=str(payload["field"]),
        root_seed=int(payload["root_seed"]),
        algorithms=tuple(str(a) for a in payload["algorithms"]),
        topology=str(payload["topology"]),
        faults=str(payload["faults"]),
        fields=int(payload["fields"]),
        workload=str(payload["workload"]),
    )


def service_manifest(
    config: "ExperimentConfig", check_stride: int = 1, trace: bool = False
) -> dict:
    """The opaque payload a sweep session pins to its queue manifest.

    Carries the full config, the engine stride, the trace flag, and the
    sweep's content key — the key is *recorded*, not re-derived, so
    workers can assert that the service layer did not perturb it.
    """
    return {
        "config": config_payload(config),
        "check_stride": int(check_stride),
        "trace": bool(trace),
        "key": content_key(config, check_stride),
    }


def shards_root(queue_dir: "str | os.PathLike") -> Path:
    """Where a queue session's per-worker shard stores live."""
    return Path(queue_dir) / "shards"


def worker_store(
    queue_dir: "str | os.PathLike",
    worker_id: str,
    config: "ExperimentConfig",
    check_stride: int = 1,
) -> ResultStore:
    """One worker's private shard: a full ResultStore under its own root.

    Shards reuse the canonical store layout (``<key>/cells.jsonl`` plus
    ``traces/``), so every existing tool — resume, ``repro replay``,
    reporting — works on a shard directly, and the merger is a plain
    record fold rather than a format conversion.
    """
    return ResultStore(
        shards_root(queue_dir) / worker_id, config, check_stride
    )


def _parse_cells_jsonl(path: Path) -> list[CellRecord]:
    """Records in one ``cells.jsonl``, in append order, torn tail skipped."""
    records: list[CellRecord] = []
    if not path.exists():
        return records
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(CellRecord.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            continue  # truncated tail of a killed worker
    return records


def merge_shards(
    store: ResultStore, shards: "str | os.PathLike"
) -> dict[str, int]:
    """Fold every worker shard under ``shards`` into the canonical store.

    Shards are visited in sorted worker-id order and their records in
    append order, so the merge is deterministic; first-by-cell-key wins
    and every duplicate is byte-verified
    (:meth:`~repro.engine.store.ResultStore.merge_records` — raises
    :class:`~repro.engine.store.ShardDivergenceError` on divergence).
    Trace files ride along: a cell's JSONL trace is copied into the
    canonical ``<key>/traces/`` unless one is already there (the same
    first-wins rule; duplicate traces of a deterministic cell are
    identical).

    Returns cumulative counts:
    ``{"shards": ..., "appended": ..., "duplicates": ..., "traces": ...}``.
    Missing or foreign-keyed shard directories contribute nothing — a
    shard only merges through the content key the store itself uses.
    """
    store.open()
    shards_path = Path(shards)
    report = {"shards": 0, "appended": 0, "duplicates": 0, "traces": 0}
    if not shards_path.is_dir():
        return report
    for shard_dir in sorted(p for p in shards_path.iterdir() if p.is_dir()):
        cells_path = shard_dir / store.key / "cells.jsonl"
        records = _parse_cells_jsonl(cells_path)
        if not records:
            continue
        report["shards"] += 1
        outcome = store.merge_records(records, source=str(cells_path))
        report["appended"] += outcome["appended"]
        report["duplicates"] += outcome["duplicates"]
        trace_dir = shard_dir / store.key / "traces"
        if trace_dir.is_dir():
            target_dir = store.directory / "traces"
            target_dir.mkdir(parents=True, exist_ok=True)
            for trace in sorted(trace_dir.glob("*.jsonl")):
                target = target_dir / trace.name
                if not target.exists():
                    shutil.copyfile(trace, target)
                    report["traces"] += 1
    return report


def _landed_records(
    store: ResultStore, shards: "str | os.PathLike"
) -> dict[CellKey, CellRecord]:
    """Everything landed so far: canonical store ∪ all worker shards.

    First-wins on overlap (canonical store first, then shards in sorted
    worker-id order); divergence checking is the *merge*'s job — this
    union is the crash-tolerant read path the streaming aggregator and
    the live metrics endpoint share, so it must never raise on a torn
    or half-written shard.
    """
    records: dict[CellKey, CellRecord] = dict(store.load_records())
    shards_path = Path(shards)
    if shards_path.is_dir():
        for shard_dir in sorted(
            p for p in shards_path.iterdir() if p.is_dir()
        ):
            for record in _parse_cells_jsonl(
                shard_dir / store.key / "cells.jsonl"
            ):
                records.setdefault(record.key, record)
    return records


def publish_partial_report(
    config: "ExperimentConfig",
    store: ResultStore,
    shards: "str | os.PathLike",
    out_path: "str | os.PathLike",
) -> int:
    """Render the partial sweep table from everything landed so far.

    The streaming aggregator: the union of the canonical store and every
    shard's records (:func:`_landed_records`) is aggregated through the
    standard reporting path and written atomically as Markdown
    (:func:`~repro.engine.store.atomic_write_text` — a reader never sees
    a torn report).  Returns the number of cells the report covers.
    """
    from repro.experiments.report import render_partial_markdown

    records = _landed_records(store, shards)
    atomic_write_text(out_path, render_partial_markdown(config, records))
    return len(records)


def _write_service_telemetry(
    queue: LeaseQueue,
    path: Path,
    registry: "MetricsRegistry | None" = None,
    service: "Mapping | None" = None,
) -> dict:
    """Snapshot queue health + per-worker throughput to ``path``.

    When the coordinator is serving live metrics, the same registry
    snapshot the ``/metrics`` endpoint would render is embedded under a
    ``"metrics"`` key, so the on-disk telemetry and the scrape endpoint
    can never drift apart.  ``service`` (daemon flag, drain state,
    respawn count, grid count…) lands under a ``"service"`` key.
    """
    from repro.observability.telemetry import service_telemetry

    payload = service_telemetry(
        queue.stats(), queue.done_log(), service=service
    )
    if registry is not None:
        payload["metrics"] = registry.snapshot()
    atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return payload


#: Route-cache counters a cell record carries home in its telemetry,
#: mapped to the fleet-wide series the coordinator republishes them as.
_RECORD_CACHE_SERIES = {
    "cache_hits": "repro_route_cache_hits_total",
    "cache_misses": "repro_route_cache_misses_total",
    "cache_invalidations": "repro_route_cache_invalidations_total",
    "cache_repairs": "repro_route_cache_repairs_total",
    "cache_drops": "repro_route_cache_drops_total",
}


def _set_total(counter: Counter, value: float, **labels) -> None:
    """``set_total`` clamped against transient dips.

    Coordinator totals are re-derived from on-disk state (done markers,
    shard files) that only grows, but a torn read can make one sample
    *look* smaller for a moment.  Publishing must never crash the
    coordinator, so a sample below the exported value simply holds the
    counter where it is.
    """
    counter.set_total(max(float(value), counter.value(**labels)), **labels)


def _update_service_metrics(
    registry: MetricsRegistry,
    queue: LeaseQueue,
    stores: "Iterable[ResultStore]",
    shards: "str | os.PathLike",
) -> None:
    """Refresh the coordinator's registry from queue + landed records.

    Called whenever the done count moves (and once at startup, so every
    pinned series exists from the first scrape).  Queue state feeds the
    depth gauges and completion counters directly — ``repro_queue_depth``
    is published both as the bare total and split per priority class
    (``{priority="p0"}``…); per-worker throughput comes through the
    standard telemetry aggregation; and engine-level route-cache totals
    — which accumulate in *worker* processes, invisible to this one —
    are recovered by summing the ``cache_*`` telemetry each landed
    :class:`CellRecord` carries.  ``stores`` holds one canonical store
    per registered grid (one-shot sessions pass exactly one).
    """
    from repro.observability.telemetry import service_telemetry

    stats = queue.stats()
    depth = registry.gauge(
        "repro_queue_depth", "Cells claimable right now."
    )
    depth.set(stats.pending)
    for index, count in enumerate(stats.pending_by_priority):
        depth.set(count, priority=f"p{index}")
    cells = registry.gauge(
        "repro_queue_cells", "Queue composition by cell state."
    )
    cells.set(stats.pending, state="pending")
    cells.set(stats.leased, state="leased")
    cells.set(stats.done, state="done")
    _set_total(
        registry.counter(
            "repro_cells_completed_total", "Cells completed fleet-wide."
        ),
        stats.done,
    )
    _set_total(
        registry.counter(
            "repro_queue_reclamations_total",
            "Stale leases reclaimed from presumed-dead workers.",
        ),
        stats.reclamations,
    )
    snapshot = service_telemetry(stats, queue.done_log())
    for worker, slot in sorted(snapshot["workers"].items()):
        _set_total(
            registry.counter(
                "repro_worker_cells_total", "Cells completed per worker."
            ),
            slot["cells"],
            worker=worker,
        )
        registry.gauge(
            "repro_worker_cells_per_sec",
            "Per-worker throughput over lease-held time.",
        ).set(slot["cells_per_sec"], worker=worker)
    sums = {series: 0.0 for series in _RECORD_CACHE_SERIES.values()}
    for store in stores:
        for record in _landed_records(store, shards).values():
            telemetry = record.telemetry or {}
            for field, series in _RECORD_CACHE_SERIES.items():
                sums[series] += float(telemetry.get(field, 0.0))
    for series, total in sums.items():
        _set_total(
            registry.counter(
                series, "Route-cache total summed from landed cell records."
            ),
            total,
        )


def _count_merge(registry: "MetricsRegistry | None", report: dict) -> None:
    """Fold one :func:`merge_shards` report into the merge counters."""
    if registry is None:
        return
    registry.counter(
        "repro_merge_appended_total", "Shard records merged into the store."
    ).inc(report["appended"])
    registry.counter(
        "repro_merge_duplicates_total",
        "Byte-verified duplicate records discarded at merge.",
    ).inc(report["duplicates"])
    registry.counter(
        "repro_merge_traces_total", "Trace files copied at merge."
    ).inc(report["traces"])


def run_worker(
    queue_dir: "str | os.PathLike",
    worker_id: str,
    *,
    heartbeat_interval: float = 1.0,
    poll_interval: float = 0.2,
    throttle: float = 0.0,
) -> int:
    """The worker process loop: claim → execute → shard-append → complete.

    Opens the queue at ``queue_dir`` and reconstructs each leased cell's
    sweep config from its *grid descriptor* (asserting per grid that the
    content key survived the round trip), appending records to one shard
    store per grid under this worker's shard root.  One-shot sessions
    exit once the queue drains; daemon sessions idle through an empty
    queue — new grids may arrive any moment — and exit only when the
    drain marker is set *and* the backlog is finished.  A daemon thread
    heartbeats the held lease every ``heartbeat_interval`` seconds while
    the cell executes, so long cells never go stale under a live worker;
    SIGKILL stops the heartbeats with the process, which is exactly the
    signal reclamation keys on.  When nothing is claimable but cells are
    still leased elsewhere, the worker naps ``poll_interval`` and retries.

    ``throttle`` sleeps that many seconds inside each leased window
    before executing — a chaos/testing knob that widens the
    kill-mid-cell window (it simulates slow hardware; the numbers are
    unaffected).  If a cell raises, the lease is released (the cell
    becomes claimable immediately) and the exception propagates — the
    worker exits nonzero and the coordinator's respawn cap bounds the
    retries a deterministically failing cell can consume.

    Returns the number of cells this worker completed.
    """
    queue = LeaseQueue.open(queue_dir)
    daemon = queue.daemon
    resolved: dict[str, tuple] = {}

    def _resolve(grid_id: str) -> tuple:
        """Per-grid execution context: (config, stride, trace dir, shard).

        Every grid descriptor runs the content-key round-trip guard
        (:meth:`ResultStore.from_grid_payload`) before its first cell —
        a perturbed payload stops the worker cold instead of landing
        records under a foreign key.  Resolutions are cached: a daemon
        worker re-resolves only for grids enqueued after it started.
        """
        if grid_id not in resolved:
            descriptor = queue.grid(grid_id)
            payload = descriptor["payload"]
            shard = ResultStore.from_grid_payload(
                shards_root(queue_dir) / worker_id, payload
            ).open()
            trace_dir = (
                shard.directory / "traces"
                if bool(payload.get("trace", False))
                else None
            )
            resolved[grid_id] = (
                shard.config,
                int(payload.get("check_stride", 1)),
                trace_dir,
                shard,
            )
        return resolved[grid_id]

    for grid_id in sorted(queue.grids()):
        _resolve(grid_id)  # validate everything registered so far, eagerly
    completed = 0
    while True:
        lease = queue.claim(worker_id)
        if lease is None:
            if queue.drained() and (
                not daemon or queue.drain_requested()
            ):
                return completed
            time.sleep(poll_interval)
            continue
        if lease.grid is None:
            queue.release(lease)
            raise ValueError(
                f"cell {lease.id} was enqueued without a grid descriptor; "
                "worker processes only execute gridded sessions "
                "(serve-sweep / enqueue)"
            )
        try:
            config, check_stride, trace_dir, shard = _resolve(lease.grid)
        except BaseException:
            queue.release(lease)
            raise
        stop = threading.Event()

        def _beat(lease=lease):
            while not stop.wait(heartbeat_interval):
                try:
                    queue.heartbeat(lease)
                except LeaseLost:
                    return  # presumed dead and reclaimed; stop beating

        beater = threading.Thread(target=_beat, daemon=True)
        beater.start()
        try:
            if throttle > 0:
                time.sleep(throttle)
            record = execute_cell(config, lease.cell, check_stride, trace_dir)
        except BaseException:
            stop.set()
            beater.join()
            queue.release(lease)
            raise
        stop.set()
        beater.join()
        # Append before marking done: a crash between the two leaves a
        # stale lease (re-executed, deduplicated at merge), never a done
        # marker without a record.
        shard.append(record)
        queue.complete(lease)
        completed += 1


def _spawn_worker(
    queue_dir: Path,
    worker_id: str,
    heartbeat_interval: float,
    poll_interval: float,
    throttle: float,
) -> subprocess.Popen:
    """Launch one ``repro work`` subprocess against ``queue_dir``."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_dir + (os.pathsep + existing if existing else "")
        )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "work",
            "--queue-dir",
            str(queue_dir),
            "--worker-id",
            worker_id,
            "--heartbeat-interval",
            str(heartbeat_interval),
            "--poll-interval",
            str(poll_interval),
            "--throttle",
            str(throttle),
        ],
        env=env,
    )


class _WorkerFleet:
    """The coordinator's view of its worker subprocesses.

    Tracks live members, SIGKILLs a provable lease-holder for chaos
    injection, and — the robustness fix — respawns **individually**: any
    member that exited while work remains is replaced against the shared
    respawn budget, so one deterministically-crashing worker can no
    longer silently degrade an N-worker fleet to N−1 forever.  Members
    whose replacement the budget no longer covers are retired (kept for
    the final wait/kill sweep, never respawned again).
    """

    def __init__(
        self,
        queue_root: Path,
        heartbeat_interval: float,
        poll_interval: float,
        throttle: float,
        budget: int,
    ):
        self.queue_root = queue_root
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        self.throttle = throttle
        self.budget = budget
        self.respawns = 0
        self.members: list[tuple[str, subprocess.Popen]] = []
        self.retired: list[tuple[str, subprocess.Popen]] = []

    def spawn(self, worker_id: str) -> None:
        self.members.append(
            (
                worker_id,
                _spawn_worker(
                    self.queue_root,
                    worker_id,
                    self.heartbeat_interval,
                    self.poll_interval,
                    self.throttle,
                ),
            )
        )

    def alive_count(self) -> int:
        return sum(1 for _, proc in self.members if proc.poll() is None)

    def all_exited(self) -> bool:
        return self.alive_count() == 0

    def kill_lease_holder(self, queue: LeaseQueue) -> bool:
        """SIGKILL one member that provably holds a live lease.

        Returns whether a victim was found — the chaos knob retries
        every poll until one exists, so the injected death always
        exercises reclamation (a victim still importing NumPy would die
        without leaving work behind).
        """
        holders = queue.lease_owners()
        for worker_id, proc in self.members:
            if worker_id in holders and proc.poll() is None:
                proc.kill()  # SIGKILL: no cleanup, beats stop
                return True
        return False

    def respawn_fallen(self) -> int:
        """Replace every exited member the budget still covers.

        Returns how many replacements were spawned.  Replacements carry
        their ancestor's id plus an ``r<n>`` suffix, so shard provenance
        and the telemetry worker table stay readable across respawns.
        """
        replaced = 0
        kept: list[tuple[str, subprocess.Popen]] = []
        for worker_id, proc in self.members:
            if proc.poll() is None:
                kept.append((worker_id, proc))
                continue
            if self.respawns >= self.budget:
                self.retired.append((worker_id, proc))
                continue
            self.respawns += 1
            replacement = f"{worker_id}r{self.respawns}"
            kept.append(
                (
                    replacement,
                    _spawn_worker(
                        self.queue_root,
                        replacement,
                        self.heartbeat_interval,
                        self.poll_interval,
                        self.throttle,
                    ),
                )
            )
            replaced += 1
        self.members = kept
        return replaced

    def wait_all(self, timeout: float = 30.0) -> None:
        """Wait for members to exit on their own (post-drain shutdown)."""
        for _, proc in self.members:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=timeout)
                except subprocess.TimeoutExpired:
                    proc.terminate()
                    proc.wait(timeout=10)

    def kill_all(self) -> None:
        for _, proc in [*self.members, *self.retired]:
            if proc.poll() is None:
                proc.kill()


def run_distributed_sweep(
    config: "ExperimentConfig",
    *,
    store: ResultStore,
    queue_dir: "str | os.PathLike",
    workers: int = 2,
    check_stride: int = 1,
    ttl: float = 10.0,
    heartbeat_interval: float = 1.0,
    poll_interval: float = 0.2,
    worker_throttle: float = 0.0,
    trace: bool = False,
    chaos_kill_after: "float | None" = None,
    max_respawns: "int | None" = None,
    on_progress: "Callable[[QueueStats], None] | None" = None,
    metrics_port: "int | None" = None,
    on_metrics_url: "Callable[[str], None] | None" = None,
    monotonic: Callable[[], float] = time.monotonic,
) -> dict[CellKey, CellRecord]:
    """Coordinate one distributed sweep session; returns the merged records.

    The coordinator: merges any shards a previous (crashed) session left
    under ``queue_dir`` into ``store``, enqueues exactly the cells the
    store is still missing, spawns ``workers`` worker processes, watches
    the queue (publishing ``<queue>/partial_report.md`` and
    ``<queue>/telemetry.json`` as cells land), individually respawns any
    worker that exited with work remaining (at most ``max_respawns``
    replacements total, default ``workers``), and finally merges the
    shards into the canonical store.  Store layout, content keys, and
    resume semantics are identical to a plain ``run_sweep_records``
    sweep, so serial, parallel, and distributed sessions resume each
    other freely.

    ``chaos_kill_after`` SIGKILLs one live worker that many seconds into
    the session — the built-in chaos-engineering knob the CI smoke job
    uses to prove lease reclamation keeps the sweep lossless.  All
    in-process coordinator timing (the chaos timer included) runs on
    ``monotonic`` — wall-clock steps (NTP, DST) cannot delay or skip an
    injected kill; only the cross-process lease protocol uses the
    queue's injectable wall clock.

    ``metrics_port`` (``0`` = ephemeral) starts a
    :class:`~repro.observability.server.MetricsServer` beside the poll
    loop: ``GET /metrics`` serves live Prometheus exposition (queue
    depth and composition, completions, reclamations, per-worker
    throughput, route-cache totals aggregated from landed records,
    merge counters) and ``GET /healthz`` serves fresh service
    telemetry.  ``on_metrics_url`` receives the bound base URL once the
    server is listening — how the CLI prints it and tests find an
    ephemeral port.  The endpoint observes; it never alters scheduling
    or results.  A sweep with nothing left to run returns before the
    queue (and therefore the server) exists.

    Raises :class:`RuntimeError` when the respawn budget is exhausted
    with cells unfinished (the deterministic-failure escape hatch), and
    :class:`~repro.engine.store.ShardDivergenceError` if any shard
    disagrees with the canonical store byte-for-byte.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if store.check_stride != check_stride:
        raise ValueError(
            f"store was keyed for check_stride={store.check_stride} but the "
            f"service is running with check_stride={check_stride}; mixing "
            "strides in one store would blend non-identical numbers"
        )
    store.open()
    registry = MetricsRegistry() if metrics_port is not None else None
    server: "MetricsServer | None" = None
    queue_root = Path(queue_dir)
    shards = shards_root(queue_root)
    # A crashed session's completed work; counted so a resumed session's
    # merge counters reflect what it inherited.
    _count_merge(registry, merge_shards(store, shards))
    grid = expand_grid(config)
    held = store.load_records()
    pending = [cell for cell in grid if cell.key not in held]
    telemetry_path = queue_root / "telemetry.json"
    report_path = queue_root / "partial_report.md"
    if not pending:
        return {
            cell.key: held[cell.key] for cell in grid if cell.key in held
        }
    queue = LeaseQueue.create(
        queue_root,
        pending,
        ttl=ttl,
        payload=service_manifest(config, check_stride, trace),
    )
    budget = workers if max_respawns is None else max_respawns
    fleet = _WorkerFleet(
        queue_root, heartbeat_interval, poll_interval, worker_throttle, budget
    )

    def _service_state() -> dict:
        return {
            "daemon": False,
            "draining": False,
            "grids": len(queue.grids()),
            "respawns": fleet.respawns,
            "workers_alive": fleet.alive_count(),
        }

    try:
        if registry is not None:
            from repro.observability.telemetry import service_telemetry

            server = MetricsServer(
                registry,
                port=metrics_port,
                health=lambda: service_telemetry(
                    queue.stats(), queue.done_log(), service=_service_state()
                ),
            )
            server.start()
            # Seed every series before the first completion, so a scrape
            # that races the fleet spawn already parses cleanly.
            _update_service_metrics(registry, queue, [store], shards)
            if on_metrics_url is not None:
                on_metrics_url(server.url)
        for index in range(workers):
            fleet.spawn(f"w{index}")
        chaos_started = monotonic()
        chaos_done = chaos_kill_after is None
        last_done = -1
        while not queue.drained():
            time.sleep(poll_interval)
            if (
                not chaos_done
                and monotonic() - chaos_started >= chaos_kill_after
            ):
                # Retried every poll until a lease-holder exists; a
                # sweep that drains first simply escapes.
                chaos_done = fleet.kill_lease_holder(queue)
            stats = queue.stats()
            if stats.done != last_done:
                last_done = stats.done
                publish_partial_report(config, store, shards, report_path)
                if registry is not None:
                    _update_service_metrics(registry, queue, [store], shards)
                _write_service_telemetry(
                    queue, telemetry_path, registry, service=_service_state()
                )
                if on_progress is not None:
                    on_progress(stats)
            if queue.drained():
                break
            fleet.respawn_fallen()
            if fleet.all_exited():
                raise RuntimeError(
                    f"every worker exited with "
                    f"{stats.total - stats.done} cells unfinished and "
                    f"the respawn budget ({budget}) is spent — a cell "
                    "is failing deterministically; inspect the worker "
                    "output and the queue at "
                    f"{queue_root}"
                )
        fleet.wait_all()  # drained: workers exit on their own poll
    finally:
        fleet.kill_all()
        if server is not None:
            server.stop()
    _count_merge(registry, merge_shards(store, shards))
    publish_partial_report(config, store, shards, report_path)
    if registry is not None:
        _update_service_metrics(registry, queue, [store], shards)
    _write_service_telemetry(
        queue, telemetry_path, registry, service=_service_state()
    )
    return {
        key: record
        for key, record in store.load_records().items()
        if key in {cell.key for cell in grid}
    }


def enqueue_grid(
    queue: "LeaseQueue | str | os.PathLike",
    config: "ExperimentConfig",
    *,
    check_stride: int = 1,
    trace: bool = False,
    priority: int = DEFAULT_PRIORITY,
    store_root: "str | os.PathLike | None" = None,
    block: bool = False,
    block_poll_interval: float = 0.5,
    block_timeout: "float | None" = None,
    monotonic: Callable[[], float] = time.monotonic,
) -> dict:
    """Admit one sweep grid into a running daemon session's queue.

    The service-level face of :meth:`LeaseQueue.register_grid` — what
    ``repro enqueue`` calls.  The grid's canonical store root comes from
    the daemon manifest (``payload["store"]``) unless ``store_root``
    overrides it; any shards earlier sessions left for this grid's key
    are merged first, and only the cells the store is still missing are
    enqueued — so enqueueing is idempotent and resume-safe, exactly like
    a one-shot ``serve-sweep``.

    Backpressure: when admission would exceed the queue's
    ``max_pending``, :class:`~repro.engine.queue.QueueFull` propagates
    (the CLI turns it into exit code 3) — unless ``block=True``, which
    retries every ``block_poll_interval`` seconds until the backlog
    drains below the bound (or ``block_timeout`` seconds pass).

    Returns the registration report
    (``{"grid", "priority", "enqueued", "skipped", "pending_depth"}``).
    """
    if not isinstance(queue, LeaseQueue):
        queue = LeaseQueue.open(queue)
    payload = service_manifest(config, check_stride, trace)
    root = (
        store_root
        if store_root is not None
        else queue.manifest()["payload"].get("store")
    )
    if root is None:
        raise ValueError(
            f"queue {queue.root} records no store root in its manifest "
            "payload and none was passed — cannot place the grid's "
            "canonical store"
        )
    store = ResultStore(Path(root), config, check_stride)
    merge_shards(store, shards_root(queue.root))
    held = store.load_records()
    cells = [cell for cell in expand_grid(config) if cell.key not in held]
    started = monotonic()
    while True:
        try:
            return queue.register_grid(payload, cells, priority=priority)
        except QueueFull:
            if not block or (
                block_timeout is not None
                and monotonic() - started >= block_timeout
            ):
                raise
            time.sleep(block_poll_interval)


def _publish_daemon_report(
    stores: "Mapping[str, ResultStore]",
    shards: "str | os.PathLike",
    out_path: "str | os.PathLike",
) -> int:
    """The daemon's streaming aggregator: one partial-report section per
    registered grid, content keys in sorted order, written atomically.
    Returns the number of cells covered across all grids."""
    from repro.experiments.report import render_partial_markdown

    covered = 0
    parts = []
    for key in sorted(stores):
        store = stores[key]
        records = _landed_records(store, shards)
        covered += len(records)
        parts.append(
            f"## Grid `{key}`\n\n"
            + render_partial_markdown(store.config, records)
        )
    atomic_write_text(
        out_path,
        "\n\n".join(parts) if parts else "*No grids enqueued yet.*\n",
    )
    return covered


def run_sweep_daemon(
    store_root: "str | os.PathLike",
    *,
    queue_dir: "str | os.PathLike",
    workers: int = 2,
    ttl: float = 10.0,
    heartbeat_interval: float = 1.0,
    poll_interval: float = 0.2,
    worker_throttle: float = 0.0,
    max_pending: "int | None" = None,
    max_respawns: "int | None" = None,
    chaos_kill_after: "float | None" = None,
    metrics_port: "int | None" = None,
    on_metrics_url: "Callable[[str], None] | None" = None,
    on_progress: "Callable[[QueueStats], None] | None" = None,
    initial_grids: "Iterable[tuple] | None" = None,
    handle_signals: bool = False,
    monotonic: Callable[[], float] = time.monotonic,
) -> dict[str, dict[CellKey, CellRecord]]:
    """The long-lived coordinator: serve grids until drained *on request*.

    Where :func:`run_distributed_sweep` runs one grid to completion,
    the daemon opens an empty daemon-mode queue under ``queue_dir``
    (recording ``store_root`` in the manifest so ``repro enqueue`` can
    find it), spawns ``workers`` persistent workers, and then serves:
    new grids dropped into the queue by :func:`enqueue_grid` — from this
    process or any other sharing the filesystem — are discovered on the
    next poll, their stores opened under ``store_root`` (one content-key
    directory per grid), and their cells drained strictly
    high-priority-first.  The crash/reclaim/merge/telemetry machinery is
    the one-shot session's, running indefinitely: stale leases are
    reclaimed, fallen workers respawned individually (``max_respawns``
    total, default ``workers``), ``partial_report.md`` (one section per
    grid) and ``telemetry.json`` (with a ``service`` block: daemon flag,
    drain state, grid count, respawns) republished as cells land.

    Shutdown: :meth:`LeaseQueue.request_drain` (``repro drain``), or —
    with ``handle_signals=True`` from the main thread — SIGTERM/SIGINT,
    flips the drain marker; workers finish the backlog and exit, the
    daemon merges every grid's shards into its canonical store and
    returns ``{content key: merged records}``.  Because every cell's
    randomness derives from its grid's root seed, the merged stores are
    byte-identical to serial runs of the same grids *regardless of the
    enqueue interleaving* — the distributed ≡ serial battery extends to
    the daemon path unchanged.

    Raises :class:`RuntimeError` when every worker has exited with
    backlog remaining and the respawn budget is spent.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    store_base = Path(store_root)
    store_base.mkdir(parents=True, exist_ok=True)
    queue_root = Path(queue_dir)
    shards = shards_root(queue_root)
    telemetry_path = queue_root / "telemetry.json"
    report_path = queue_root / "partial_report.md"
    queue = LeaseQueue.create(
        queue_root,
        [],
        ttl=ttl,
        daemon=True,
        max_pending=max_pending,
        payload={"service": "daemon", "store": str(store_base.resolve())},
    )
    for entry in initial_grids or ():
        config, check_stride, trace, priority = entry
        enqueue_grid(
            queue,
            config,
            check_stride=check_stride,
            trace=trace,
            priority=priority,
        )
    budget = workers if max_respawns is None else max_respawns
    fleet = _WorkerFleet(
        queue_root, heartbeat_interval, poll_interval, worker_throttle, budget
    )
    registry = MetricsRegistry() if metrics_port is not None else None
    server: "MetricsServer | None" = None
    stores: dict[str, ResultStore] = {}

    def _refresh_stores() -> dict[str, ResultStore]:
        """Open a canonical store for every grid registered so far."""
        for key, descriptor in queue.grids().items():
            if key not in stores:
                stores[key] = ResultStore.from_grid_payload(
                    store_base, descriptor["payload"]
                ).open()
        return stores

    def _service_state() -> dict:
        return {
            "daemon": True,
            "draining": queue.drain_requested(),
            "grids": len(queue.grids()),
            "respawns": fleet.respawns,
            "workers_alive": fleet.alive_count(),
        }

    def _health() -> dict:
        from repro.observability.telemetry import service_telemetry

        payload = service_telemetry(
            queue.stats(), queue.done_log(), service=_service_state()
        )
        if queue.drain_requested():
            payload["status"] = "draining"  # overrides the default "ok"
        return payload

    previous_handlers: dict = {}
    if handle_signals and threading.current_thread() is threading.main_thread():
        def _on_signal(signum, frame):
            queue.request_drain()

        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(signum, _on_signal)
    _refresh_stores()
    try:
        if registry is not None:
            server = MetricsServer(registry, port=metrics_port, health=_health)
            server.start()
            _update_service_metrics(registry, queue, stores.values(), shards)
            if on_metrics_url is not None:
                on_metrics_url(server.url)
        for index in range(workers):
            fleet.spawn(f"w{index}")
        chaos_started = monotonic()
        chaos_done = chaos_kill_after is None
        last_published: "tuple | None" = None
        while not (queue.drain_requested() and queue.drained()):
            time.sleep(poll_interval)
            if (
                not chaos_done
                and monotonic() - chaos_started >= chaos_kill_after
            ):
                chaos_done = fleet.kill_lease_holder(queue)
            _refresh_stores()
            stats = queue.stats()
            snapshot = (
                stats.done,
                stats.pending,
                len(stores),
                queue.drain_requested(),
            )
            if snapshot != last_published:
                last_published = snapshot
                _publish_daemon_report(stores, shards, report_path)
                if registry is not None:
                    _update_service_metrics(
                        registry, queue, stores.values(), shards
                    )
                _write_service_telemetry(
                    queue, telemetry_path, registry, service=_service_state()
                )
                if on_progress is not None:
                    on_progress(stats)
            if queue.drain_requested() and queue.drained():
                break
            fleet.respawn_fallen()
            if fleet.all_exited() and not queue.drained():
                raise RuntimeError(
                    f"every worker exited with {queue.pending_depth()} "
                    f"cells unfinished and the respawn budget ({budget}) "
                    "is spent — a cell is failing deterministically; "
                    f"inspect the worker output and the queue at "
                    f"{queue_root}"
                )
        fleet.wait_all()  # drain marker set: workers exit on their own
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        fleet.kill_all()
        if server is not None:
            server.stop()
    results: dict[str, dict[CellKey, CellRecord]] = {}
    for key in sorted(_refresh_stores()):
        store = stores[key]
        _count_merge(registry, merge_shards(store, shards))
        results[key] = store.load_records()
    _publish_daemon_report(stores, shards, report_path)
    if registry is not None:
        _update_service_metrics(registry, queue, stores.values(), shards)
    _write_service_telemetry(
        queue, telemetry_path, registry, service=_service_state()
    )
    return results


def _store_cells(root: Path) -> dict[str, dict[CellKey, CellRecord]]:
    """Every ``<content key>/cells.jsonl`` under a store root, parsed
    with the store's own semantics (later duplicate lines win)."""
    out: dict[str, dict[CellKey, CellRecord]] = {}
    for cells_path in sorted(root.glob("*/cells.jsonl")):
        records: dict[CellKey, CellRecord] = {}
        for record in _parse_cells_jsonl(cells_path):
            records[record.key] = record
        out[cells_path.parent.name] = records
    return out


def diff_stores(
    left: "str | os.PathLike", right: "str | os.PathLike"
) -> list[str]:
    """Canonical differences between two store roots (empty = identical).

    The bit-identity assertion behind ``repro store-diff``: both roots
    must hold the same content-key directories, the same cell keys per
    directory, and byte-identical canonical records per cell
    (:func:`~repro.engine.store.canonical_record_bytes` — timing and
    telemetry excluded, exactly as record equality excludes them).
    Returns human-readable difference lines, most structural first.
    """
    a, b = _store_cells(Path(left)), _store_cells(Path(right))
    differences: list[str] = []
    for key in sorted(set(a) - set(b)):
        differences.append(f"content key {key} only in {left}")
    for key in sorted(set(b) - set(a)):
        differences.append(f"content key {key} only in {right}")
    for key in sorted(set(a) & set(b)):
        cells_a, cells_b = a[key], b[key]
        for cell in sorted(set(cells_a) - set(cells_b)):
            differences.append(f"{key}: cell {cell} only in {left}")
        for cell in sorted(set(cells_b) - set(cells_a)):
            differences.append(f"{key}: cell {cell} only in {right}")
        for cell in sorted(set(cells_a) & set(cells_b)):
            bytes_a = canonical_record_bytes(cells_a[cell])
            bytes_b = canonical_record_bytes(cells_b[cell])
            if bytes_a != bytes_b:
                differences.append(
                    f"{key}: cell {cell} diverges\n"
                    f"  {left}: {bytes_a.decode('utf-8')}\n"
                    f"  {right}: {bytes_b.decode('utf-8')}"
                )
    return differences
