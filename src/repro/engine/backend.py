"""Minimal array-backend seam for the trial-tensorized kernels.

The tensor executor (:mod:`repro.engine.tensor`) expresses its kernels
against an array-API-style namespace ``xp`` instead of importing NumPy
directly, so a drop-in accelerator backend (CuPy exposes the same call
surface) can be plugged in later without re-touching the kernels.  NumPy
is the only backend this library ships — registering another one is the
accelerator port's job, not this module's.

>>> get_backend().name
'numpy'
>>> int(get_backend().xp.arange(4).sum())
6
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy

__all__ = ["ArrayBackend", "available_backends", "get_backend"]


@dataclass(frozen=True)
class ArrayBackend:
    """One pluggable array namespace.

    Attributes
    ----------
    name:
        Registry key (``"numpy"`` for the shipped backend).
    xp:
        The array-API-style module: kernels call ``xp.stack``,
        ``xp.minimum`` etc. through this attribute only.
    """

    name: str
    xp: Any = field(repr=False)


_BACKENDS: dict[str, ArrayBackend] = {
    "numpy": ArrayBackend(name="numpy", xp=numpy),
}


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted.

    >>> available_backends()
    ('numpy',)
    """
    return tuple(sorted(_BACKENDS))


def get_backend(name: str = "numpy") -> ArrayBackend:
    """Look up a registered :class:`ArrayBackend` by name.

    Unknown names fail loudly — a silent NumPy fallback would make a
    mistyped accelerator request run slow with no signal.

    >>> get_backend("numpy").xp is numpy
    True
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown array backend {name!r}; registered: "
            f"{available_backends()}"
        ) from None
