"""Occupancy concentration for the hierarchy's squares.

Section 3 of the paper: "An application of the Chernoff Bound tells us that
``(∀i) |#(□_i)·√n/n − 1| < 1/10`` w.h.p." — with ``~√n`` squares each of
expected occupancy ``~√n``.  This concentration is what keeps the induced
sum-coefficients ``α_i = (2/5)·E#/#`` inside Lemma 1's ``(1/3, 1/2)``
interval, and its *failure* at small expected occupancies is what
experiment E10 demonstrates.

Occupancy of a fixed square with area fraction ``p`` is Binomial(n, p);
the bounds here are the standard multiplicative Chernoff tails.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.squares import GridPartition, Square, UNIT_SQUARE

__all__ = [
    "chernoff_upper_tail",
    "chernoff_lower_tail",
    "occupancy_deviation_bound",
    "max_occupancy_deviation",
    "paper_occupancy_condition",
]


def chernoff_upper_tail(mean: float, deviation: float) -> float:
    """``P(X ≥ (1+δ)μ) ≤ exp(−μδ²/(2+δ))`` for Binomial/Poisson ``X``."""
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if deviation < 0:
        raise ValueError(f"deviation must be non-negative, got {deviation}")
    return math.exp(-mean * deviation**2 / (2.0 + deviation))


def chernoff_lower_tail(mean: float, deviation: float) -> float:
    """``P(X ≤ (1−δ)μ) ≤ exp(−μδ²/2)``."""
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if not 0 <= deviation <= 1:
        raise ValueError(f"lower-tail deviation must lie in [0, 1], got {deviation}")
    return math.exp(-mean * deviation**2 / 2.0)


def occupancy_deviation_bound(
    expected: float, squares: int, failure_probability: float
) -> float:
    """Smallest ``δ`` with ``P(∃ square: |#/E# − 1| ≥ δ) ≤ failure_probability``.

    Union bound over ``squares`` squares with two-sided Chernoff tails
    (using the looser ``exp(−μδ²/3)`` valid for δ ≤ 1 on both sides):
    ``δ = sqrt(3·ln(2·squares/failure)/E#)``.
    """
    if expected <= 0 or squares <= 0:
        raise ValueError("expected occupancy and square count must be positive")
    if not 0 < failure_probability < 1:
        raise ValueError(
            f"failure probability must lie in (0, 1), got {failure_probability}"
        )
    return math.sqrt(3.0 * math.log(2.0 * squares / failure_probability) / expected)


def max_occupancy_deviation(
    positions: np.ndarray, cells_per_axis: int, region: Square = UNIT_SQUARE
) -> float:
    """Measured ``max_i |#(□_i)/E#(□_i) − 1|`` over a ``k × k`` partition."""
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {positions.shape}")
    if cells_per_axis <= 0:
        raise ValueError(f"cells_per_axis must be positive, got {cells_per_axis}")
    partition = GridPartition(region, cells_per_axis)
    counts = np.bincount(
        partition.cell_indices(positions), minlength=len(partition)
    )
    expected = len(positions) / len(partition)
    return float(np.abs(counts / expected - 1.0).max())


def paper_occupancy_condition(positions: np.ndarray) -> dict[str, float | bool]:
    """The paper's §3 statement for the top-level ``~√n`` partition.

    Partitions the unit square into the nearest-even-square-to-``√n`` cells
    (the hierarchy's first level) and checks
    ``max_i |#(□_i)·n₁/n − 1| < 1/10``.
    """
    from repro.hierarchy.subdivision import nearest_even_square

    n = len(positions)
    if n < 4:
        raise ValueError(f"need at least 4 sensors, got {n}")
    n1 = nearest_even_square(math.sqrt(n))
    k = int(round(math.sqrt(n1)))
    deviation = max_occupancy_deviation(positions, k)
    return {
        "n": n,
        "squares": n1,
        "expected_per_square": n / n1,
        "max_deviation": deviation,
        "paper_condition_holds": bool(deviation < 0.1),
    }
