"""Analysis toolkit: every quantitative claim in the paper, computable.

* :mod:`repro.analysis.lemma1` — the exact expected update matrix
  ``E[AᵀA]`` of the affine dynamics and its spectral contraction factor,
  against the paper's ``1 − 1/(2n)`` and ``1 − 8/(9(n−1))`` bounds.
* :mod:`repro.analysis.lemma2` — the perturbed-dynamics deviation bound
  and its failure probability ``5/nᵃ``.
* :mod:`repro.analysis.occupancy` — Chernoff occupancy concentration for
  the hierarchy's squares (the paper's ``|#(□)·√n/n − 1| < 1/10`` w.h.p.).
* :mod:`repro.analysis.mixing` — random-walk spectral gaps and averaging
  times (the Boyd et al. ``Θ(n·T_mix)`` link).
* :mod:`repro.analysis.theory` — closed-form transmission-cost predictions
  for all three algorithms (used to extrapolate beyond simulable ``n``).
"""

from repro.analysis.lemma1 import (
    contraction_factor,
    expected_update_matrix,
    monte_carlo_expected_matrix,
    paper_loose_bound,
    paper_tight_bound,
    verify_lemma1,
)
from repro.analysis.lemma2 import (
    lemma2_bound,
    lemma2_failure_probability,
    lemma2_empirical_exceedance,
)
from repro.analysis.mixing import (
    averaging_time_bound,
    gossip_averaging_matrix,
    random_walk_matrix,
    second_eigenvalue,
    spectral_gap,
)
from repro.analysis.occupancy import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    max_occupancy_deviation,
    occupancy_deviation_bound,
    paper_occupancy_condition,
)
from repro.analysis.theory import (
    geographic_gossip_prediction,
    hierarchical_prediction,
    paper_headline_form,
    randomized_gossip_prediction,
)

__all__ = [
    "averaging_time_bound",
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "contraction_factor",
    "expected_update_matrix",
    "geographic_gossip_prediction",
    "gossip_averaging_matrix",
    "hierarchical_prediction",
    "lemma2_bound",
    "lemma2_empirical_exceedance",
    "lemma2_failure_probability",
    "max_occupancy_deviation",
    "monte_carlo_expected_matrix",
    "occupancy_deviation_bound",
    "paper_headline_form",
    "paper_loose_bound",
    "paper_occupancy_condition",
    "paper_tight_bound",
    "random_walk_matrix",
    "randomized_gossip_prediction",
    "second_eigenvalue",
    "spectral_gap",
    "verify_lemma1",
]
