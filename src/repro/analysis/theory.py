"""Closed-form transmission-cost predictions.

The paper's comparison table in prose (Sections 1.1-1.2):

=================  =============================
algorithm          transmissions to ε-average
=================  =============================
randomized [1]     ``Õ(n²)``
geographic [5]     ``Õ(n^1.5)``
this paper         ``n·(log(n/ε))^{O(log log n)} = n^{1+o(1)}``
=================  =============================

These evaluators turn the asymptotic forms into concrete numbers with
explicit constants so that experiment E7 can (a) sanity-check measured
slopes and (b) extrapolate beyond simulable ``n``.  They are *models*, not
measurements — the benchmarks label them as such.
"""

from __future__ import annotations

import math

from repro.graphs.rgg import connectivity_radius
from repro.hierarchy.subdivision import subdivision_factors

__all__ = [
    "randomized_gossip_prediction",
    "geographic_gossip_prediction",
    "hierarchical_prediction",
    "paper_headline_form",
]

#: Mean distance between two uniform points in the unit square (exact value
#: is (2+√2+5·asinh 1)/15 ≈ 0.5214); routes cover this on average.
MEAN_UNIFORM_DISTANCE = 0.5214054331647207


def randomized_gossip_prediction(
    n: int, epsilon: float, radius_constant: float = 2.0, gap_constant: float = 1.0
) -> float:
    """Predicted transmissions for randomized gossip on ``G(n, r)``.

    ``T_ave ≈ log(1/ε)/gap(W̄)`` ticks; the expected averaging matrix's
    spectral gap on an RGG measures ``≈ gap_constant·r²/n`` (calibrated
    against :func:`repro.analysis.mixing.spectral_gap`, constant ≈ 1.05 at
    n = 128..512).  Two transmissions per tick, so the total is
    ``Θ(n²·log(1/ε)/log n)`` — the paper's ``Õ(n²)``.
    """
    _check(n, epsilon)
    radius = connectivity_radius(n, radius_constant)
    gap = gap_constant * radius**2 / n
    ticks = math.log(1.0 / epsilon) / gap
    return 2.0 * ticks


def geographic_gossip_prediction(
    n: int, epsilon: float, radius_constant: float = 2.0, rate_constant: float = 2.0
) -> float:
    """Predicted transmissions for geographic gossip.

    Uniform-pair convex averaging contracts ‖x‖² at ``(1 − 1/(2n))`` per
    tick ⇒ ``≈ rate_constant·n·log(1/ε²)`` ticks; each tick is a routed
    round trip of ``2·E[dist]/r`` hops.
    """
    _check(n, epsilon)
    radius = connectivity_radius(n, radius_constant)
    ticks = rate_constant * n * math.log(1.0 / epsilon**2)
    hops_per_tick = 2.0 * MEAN_UNIFORM_DISTANCE / radius
    return ticks * hops_per_tick


def hierarchical_prediction(
    n: int,
    epsilon: float,
    leaf_threshold: float | None = None,
    radius_constant: float = 2.0,
    exchange_constant: float = 2.0,
    near_constant: float = 3.0,
    epsilon_decay: float = 0.2,
) -> float:
    """Worst-case transmissions for the hierarchical affine protocol.

    Evaluates the Section 5 recurrence numerically with *non-adaptive*
    (prescribed-count) rounds.  The adaptive executor measures far lower —
    a child round after an exchange only redistributes one supernode's
    delta, which the recurrence has no way to see — so treat this as the
    ``adaptive=False`` model and an upper envelope for measured runs.
    Its log-factor tower is exactly why the paper's algorithm only
    overtakes geographic gossip at very large ``n`` (cf.
    :func:`paper_headline_form` for the constant-free shape):

        H(leaf)  = near_constant · m² · ln(m/ε_leaf)          (Near gossip)
        H(depth) = exchanges · (round-trip hops + activation + 2·H(child))

    with ``exchanges = exchange_constant · k · ln(k/ε_depth)``, routing a
    round trip across a depth-``r`` square of side ``s_r`` costing
    ``2·s_r·E[dist-in-unit-square]/r(n)`` hops.
    """
    _check(n, epsilon)
    from repro.hierarchy.subdivision import practical_leaf_threshold

    if leaf_threshold is None:
        leaf_threshold = practical_leaf_threshold(n)
    factors = subdivision_factors(n, leaf_threshold)
    radius = connectivity_radius(n, radius_constant)

    depth_count = len(factors)
    occupancy = float(n)
    side = 1.0
    sides, occupancies = [], []
    for factor in factors:
        sides.append(side)
        occupancies.append(occupancy)
        side /= math.sqrt(factor)
        occupancy /= factor
    # Leaf cost: quadratic Near averaging plus activation floods.
    eps_leaf = epsilon * epsilon_decay**depth_count
    leaf_m = max(occupancy, 2.0)
    cost = near_constant * leaf_m**2 * max(1.0, math.log(leaf_m / eps_leaf))
    cost += 2.0 * 2.0 * leaf_m  # near costs 2/tick... folded: activation floods
    # Walk back up the hierarchy.
    for depth in range(depth_count - 1, -1, -1):
        k = factors[depth]
        eps_r = epsilon * epsilon_decay**depth
        exchanges = exchange_constant * k * max(1.0, math.log(k / eps_r))
        hops = 2.0 * sides[depth] * MEAN_UNIFORM_DISTANCE / radius
        activation = 2.0 * k * sides[depth] * MEAN_UNIFORM_DISTANCE / radius
        cost = activation + exchanges * (hops + 2.0 * cost)
    return cost


def paper_headline_form(n: int, epsilon: float, constant: float = 1.0) -> float:
    """The paper's shape ``n · (log(n/ε))^{constant · log log n}``.

    Not a calibrated prediction — a reference curve whose *slope* on a
    log-log plot is the claimed ``1 + o(1)``.
    """
    _check(n, epsilon)
    loglog = math.log(max(math.log(n), math.e))
    return n * math.log(n / epsilon) ** (constant * loglog)


def _check(n: int, epsilon: float) -> None:
    if n < 4:
        raise ValueError(f"need n >= 4, got {n}")
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
