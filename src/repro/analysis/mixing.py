"""Random-walk mixing and gossip averaging times.

Boyd et al. (the paper's [1]) tie randomized gossip's cost to mixing: the
number of transmissions is ``Θ(n·T_mix(G))``, and the ε-averaging time in
clock ticks is governed by the second-largest eigenvalue of the expected
averaging matrix ``W̄``:

    T_ave(ε) = Θ( log(1/ε) / log(1/λ₂(W̄)) ).

On a geometric random graph at the connectivity radius the spectral gap is
``Θ(r²) = Θ(log n / n)``, which is where randomized gossip's ``Õ(n²)``
comes from and what geographic gossip routes around.  Experiment E12
measures all three quantities.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "random_walk_matrix",
    "gossip_averaging_matrix",
    "second_eigenvalue",
    "spectral_gap",
    "averaging_time_bound",
]


def random_walk_matrix(neighbors: Sequence[np.ndarray]) -> np.ndarray:
    """The natural random walk ``P[i, j] = 1/deg(i)`` (rows of isolated
    nodes get a self-loop so the matrix stays stochastic)."""
    n = len(neighbors)
    if n == 0:
        raise ValueError("empty graph")
    matrix = np.zeros((n, n))
    for i, adjacency in enumerate(neighbors):
        if adjacency.size == 0:
            matrix[i, i] = 1.0
        else:
            matrix[i, adjacency] = 1.0 / adjacency.size
    return matrix


def gossip_averaging_matrix(neighbors: Sequence[np.ndarray]) -> np.ndarray:
    """Expected one-tick averaging matrix ``W̄`` of randomized gossip.

    When node ``i`` ticks (probability 1/n) it averages with a uniform
    neighbour ``j``; the realised matrix is
    ``W_ij = I − (e_i − e_j)(e_i − e_j)ᵀ/2``.  ``W̄`` is the expectation
    over both choices (Boyd et al., eq. (3)-(5)).
    """
    n = len(neighbors)
    if n == 0:
        raise ValueError("empty graph")
    matrix = np.eye(n)
    for i, adjacency in enumerate(neighbors):
        if adjacency.size == 0:
            continue
        for j in adjacency:
            weight = 1.0 / (n * adjacency.size)
            j = int(j)
            # subtract weight * (e_i - e_j)(e_i - e_j)^T / 2
            matrix[i, i] -= weight / 2.0
            matrix[j, j] -= weight / 2.0
            matrix[i, j] += weight / 2.0
            matrix[j, i] += weight / 2.0
    return matrix


def second_eigenvalue(matrix: np.ndarray) -> float:
    """Second-largest eigenvalue modulus, excluding the top (Perron) one.

    Works for the symmetric ``W̄`` exactly; for the (generally
    non-symmetric) random-walk matrix it uses the full spectrum.
    """
    if matrix.shape[0] < 2:
        raise ValueError("need at least a 2x2 matrix")
    if np.allclose(matrix, matrix.T):
        eigenvalues = np.abs(np.linalg.eigvalsh(matrix))
    else:
        eigenvalues = np.abs(np.linalg.eigvals(matrix))
    eigenvalues.sort()
    return float(eigenvalues[-2])


def spectral_gap(neighbors: Sequence[np.ndarray]) -> float:
    """``1 − λ₂(W̄)`` for randomized gossip on this topology."""
    return 1.0 - second_eigenvalue(gossip_averaging_matrix(neighbors))


def averaging_time_bound(
    neighbors: Sequence[np.ndarray], epsilon: float
) -> float:
    """Boyd et al.'s tick bound ``3·log(1/ε) / log(1/λ₂(W̄))``.

    Transmissions are twice this (each exchange costs two sends) — the
    quantity experiment E12 compares against measured runs.
    """
    if epsilon <= 0 or epsilon >= 1:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    lam = second_eigenvalue(gossip_averaging_matrix(neighbors))
    if lam >= 1.0:
        return math.inf  # disconnected: never averages
    return 3.0 * math.log(1.0 / epsilon) / math.log(1.0 / lam)
