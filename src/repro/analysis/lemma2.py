"""Lemma 2 made computable.

The perturbed affine dynamics (imperfect intra-square averaging adds a
bounded antisymmetric disturbance ν(t), ``|ν(t)| < ε_ν``) satisfy

    P[ ‖y(t)‖ > n^{a/2}·( (1 − 1/(2n))^{t/2}·‖y(0)‖ + 8·√2·n^{3/2}·ε_ν ) ]
        ≤ 5/nᵃ.

This module evaluates the bound, its failure budget, and an empirical
exceedance rate from simulated trajectories (experiment E3).  The paper
uses this lemma to justify the ε_r schedule: one level's residual error is
the next level's ν, so ε must shrink polynomially with depth.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "lemma2_bound",
    "lemma2_failure_probability",
    "lemma2_empirical_exceedance",
]


def lemma2_bound(
    t: int,
    n: int,
    initial_norm: float,
    noise_bound: float,
    a: float = 1.0,
) -> float:
    """The deviation bound ``n^{a/2}((1−1/2n)^{t/2}‖y(0)‖ + 8√2 n^{3/2} ε_ν)``."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    if t < 0:
        raise ValueError(f"need t >= 0, got {t}")
    if initial_norm < 0 or noise_bound < 0:
        raise ValueError("norms and noise bounds must be non-negative")
    decay = (1.0 - 1.0 / (2.0 * n)) ** (t / 2.0)
    floor = 8.0 * math.sqrt(2.0) * n**1.5 * noise_bound
    return n ** (a / 2.0) * (decay * initial_norm + floor)


def lemma2_failure_probability(n: int, a: float = 1.0) -> float:
    """The bound's failure budget ``5/nᵃ`` (can exceed 1 for small n)."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    return 5.0 / n**a


def lemma2_empirical_exceedance(
    n: int,
    noise_bound: float,
    ticks: int,
    trials: int,
    rng: np.random.Generator,
    a: float = 1.0,
) -> dict[str, float]:
    """Fraction of simulated trajectories exceeding the Lemma 2 bound.

    Each trial runs the perturbed affine dynamics from a random mean-zero
    start and checks ``‖y(t)‖`` against :func:`lemma2_bound` at the final
    tick.  Lemma 2 promises an exceedance rate ≤ ``5/nᵃ``.
    """
    from repro.gossip.affine import PerturbedAffineGossipKn
    from repro.routing.cost import TransmissionCounter

    if trials <= 0:
        raise ValueError(f"need a positive trial count, got {trials}")
    exceeded = 0
    for _ in range(trials):
        algorithm = PerturbedAffineGossipKn(
            n, noise_bound=noise_bound, alpha_rng=rng
        )
        values = rng.normal(size=n)
        values -= values.mean()
        initial_norm = float(np.linalg.norm(values))
        counter = TransmissionCounter()
        for _tick in range(ticks):
            algorithm.tick(int(rng.integers(n)), values, counter, rng)
        bound = lemma2_bound(ticks, n, initial_norm, noise_bound, a)
        if float(np.linalg.norm(values - values.mean())) > bound:
            exceeded += 1
    return {
        "exceedance_rate": exceeded / trials,
        "allowed_rate": min(1.0, lemma2_failure_probability(n, a)),
        "trials": trials,
    }
