"""Lemma 1 made computable.

The paper's appendix derives, for the affine pairwise dynamics on ``K_n``
with per-node coefficients ``α_i``:

    E[AᵀA] = I·(1 − 1/(n−1)) + 11ᵀ/(n(n−1))
             − (1−2α)(1−2α)ᵀ/(n(n−1)) + Σ_i (1−2α_i)²·E_ii/(n−1)

and concludes ``E‖x(t)‖² < (1 − 1/(2n))^t ‖x(0)‖²`` for mean-zero ``x(0)``
(the proof's sharper intermediate constant is ``1 − 8/(9(n−1))``).  The
mean-zero restriction matters: the dynamics conserve the *sum*, not the
all-ones direction, so contraction holds on the subspace ``x ⊥ 1``.

This module builds ``E[AᵀA]`` exactly, cross-checks it by Monte Carlo over
random update matrices ``A(t) = I − (α_i e_i − α_j e_j)(e_i − e_j)ᵀ``, and
extracts the true per-tick contraction factor — the largest eigenvalue of
``P·E[AᵀA]·P`` with ``P`` the projection onto ``1⊥`` (experiment E1).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "expected_update_matrix",
    "monte_carlo_expected_matrix",
    "contraction_factor",
    "paper_loose_bound",
    "paper_tight_bound",
    "verify_lemma1",
]


def _validate_alphas(alphas: np.ndarray) -> np.ndarray:
    alphas = np.asarray(alphas, dtype=np.float64)
    if alphas.ndim != 1 or alphas.size < 2:
        raise ValueError(
            f"need a 1-D array of at least two alphas, got shape {alphas.shape}"
        )
    return alphas


def expected_update_matrix(alphas: np.ndarray) -> np.ndarray:
    """The closed-form ``E[AᵀA]`` from the Lemma 1 proof."""
    alphas = _validate_alphas(alphas)
    n = alphas.size
    beta = 1.0 - 2.0 * alphas  # the proof's (1 − 2α) vector
    matrix = np.eye(n) * (1.0 - 1.0 / (n - 1))
    matrix += np.ones((n, n)) / (n * (n - 1))
    matrix -= np.outer(beta, beta) / (n * (n - 1))
    matrix += np.diag(beta**2) / (n - 1)
    return matrix


def monte_carlo_expected_matrix(
    alphas: np.ndarray,
    rng: np.random.Generator,
    samples: int = 20_000,
) -> np.ndarray:
    """Monte-Carlo estimate of ``E[AᵀA]`` (cross-validates the formula).

    Each sample draws the tick owner ``i`` uniformly, the partner ``j``
    uniformly among the rest, forms
    ``A = I − (α_i e_i − α_j e_j)(e_i − e_j)ᵀ`` and averages ``AᵀA``.
    """
    alphas = _validate_alphas(alphas)
    if samples <= 0:
        raise ValueError(f"need a positive sample count, got {samples}")
    n = alphas.size
    accumulator = np.zeros((n, n))
    identity = np.eye(n)
    for _ in range(samples):
        i = int(rng.integers(n))
        j = int(rng.integers(n - 1))
        if j >= i:
            j += 1
        outer_left = np.zeros(n)
        outer_left[i] = alphas[i]
        outer_left[j] = -alphas[j]
        outer_right = np.zeros(n)
        outer_right[i] = 1.0
        outer_right[j] = -1.0
        update = identity - np.outer(outer_left, outer_right)
        accumulator += update.T @ update
    return accumulator / samples


def contraction_factor(alphas: np.ndarray) -> float:
    """Per-tick contraction of ``E‖x‖²`` on the mean-zero subspace.

    The largest eigenvalue of ``P·E[AᵀA]·P`` restricted to ``1⊥``; Lemma 1
    asserts it is below ``1 − 1/(2n)``.
    """
    alphas = _validate_alphas(alphas)
    n = alphas.size
    projector = np.eye(n) - np.ones((n, n)) / n
    projected = projector @ expected_update_matrix(alphas) @ projector
    eigenvalues = np.linalg.eigvalsh(projected)
    return float(eigenvalues[-1])


def paper_loose_bound(n: int) -> float:
    """Lemma 1's headline factor ``1 − 1/(2n)``."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    return 1.0 - 1.0 / (2.0 * n)


def paper_tight_bound(n: int) -> float:
    """The proof's sharper intermediate factor ``1 − 8/(9(n−1))``."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    return 1.0 - 8.0 / (9.0 * (n - 1))


def verify_lemma1(alphas: np.ndarray) -> dict[str, float | bool]:
    """One-call verdict for experiment E1's table row."""
    alphas = _validate_alphas(alphas)
    n = alphas.size
    factor = contraction_factor(alphas)
    loose = paper_loose_bound(n)
    tight = paper_tight_bound(n)
    return {
        "n": n,
        "contraction_factor": factor,
        "loose_bound": loose,
        "tight_bound": tight,
        "satisfies_loose": bool(factor < loose),
        "satisfies_tight": bool(factor <= tight + 1e-12),
    }
