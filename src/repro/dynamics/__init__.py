"""Fault & churn dynamics: time-varying substrates for every protocol.

The paper analyses gossip on a *static* connected ``G(n, r)``; the
sensor-network literature it belongs to assumes the opposite — nodes
crash and recover, links drop, packets are lost in flight.  This package
turns any protocol × topology cell into such a time-varying scenario:

* :mod:`repro.dynamics.schedule` — deterministic, seed-derived fault
  schedules: :class:`FaultSpec` (the regime: churn / link failures /
  per-hop loss / jitter, parsed from ``"churn=0.02,loss=0.05"`` strings
  or :data:`FAULT_PRESETS`), :class:`FaultSchedule` (its vectorized
  per-epoch realisation), and :class:`LossChannel` (the per-hop loss
  stream).
* :mod:`repro.dynamics.overlay` — the runtime: :class:`DynamicSubstrate`
  (a masked, epoch-evolving view over a
  :class:`~repro.graphs.rgg.RandomGeometricGraph`),
  :class:`LossyRouter` (routes severed mid-transaction abort and charge,
  like routing voids), and :class:`DynamicGossip` (wraps any tick-driven
  protocol; preserves both engine batching contracts).

The engine integrates this package end to end: set
``ExperimentConfig(faults="churn=0.02,loss=0.05")`` (or the CLI's
``--faults`` / ``--churn-rate`` / ``--loss-prob``) and every sweep cell
runs on a dynamic substrate, records fault metrics in its
:class:`~repro.engine.executor.CellRecord`, and keys its result store by
the fault spec.  See ``docs/dynamics.md`` for the schedule grammar,
determinism rules, and abort semantics.
"""

from repro.dynamics.overlay import (
    DynamicGossip,
    DynamicSubstrate,
    LossyRouter,
    live_node_error,
)
from repro.dynamics.schedule import (
    FAULT_PRESETS,
    EpochEvents,
    FaultSchedule,
    FaultSpec,
    LossChannel,
)

__all__ = [
    "FAULT_PRESETS",
    "DynamicGossip",
    "DynamicSubstrate",
    "EpochEvents",
    "FaultSchedule",
    "FaultSpec",
    "LossChannel",
    "LossyRouter",
    "live_node_error",
]
