"""Time-varying substrates: masked graphs, lossy routing, dynamic runs.

Three pieces turn a static :class:`~repro.graphs.rgg.RandomGeometricGraph`
plus a :class:`~repro.dynamics.schedule.FaultSchedule` into a live
scenario any tick-driven protocol can run on unchanged:

* :class:`DynamicSubstrate` — a duck-typed graph wrapper that maintains
  the *current* adjacency view: crashed nodes and down links are masked
  out of the neighbour arrays (in place, so routers holding the list see
  every epoch transition), positions may jitter, and every registered
  :class:`~repro.routing.cache.CachedGreedyRouter` is invalidated exactly
  at the nodes whose adjacency changed.
* :class:`LossyRouter` — wraps a router with per-hop message loss from
  the schedule's :class:`~repro.dynamics.schedule.LossChannel`.  A lost
  transmission severs the route: the hops attempted are charged under
  ``"route_lost"`` and the result reports ``delivered=False``, which
  triggers the protocols' existing abort-without-update handling — the
  same mass-conservation contract as a routing void.
* :class:`DynamicGossip` — an :class:`~repro.gossip.base.AsynchronousGossip`
  wrapper that advances the substrate's epoch clock as ticks elapse,
  drops ticks owned by crashed nodes, and otherwise delegates to the
  wrapped protocol's ``tick`` / ``tick_block``.  It preserves both engine
  contracts (stride-1 bit-identity, block-size invariance) because epoch
  boundaries are functions of the absolute tick index and all fault
  randomness lives on dedicated streams.

Conservation under dynamics: exchanges only ever touch live nodes (a
crashed node leaves every adjacency list, so no route enters it), crashed
nodes freeze their value and bring it back on recovery, and severed
transactions abort before any update — so the sum over *all* nodes is
invariant through churn, loss, and link failures, and the live-node sum
changes only by the frozen mass of currently-dead nodes (tested).

A disabled spec is a bit-exact pass-through:

>>> import numpy as np
>>> from repro.dynamics.schedule import FaultSpec
>>> from repro.gossip.randomized import RandomizedGossip
>>> from repro.graphs.rgg import RandomGeometricGraph
>>> graph = RandomGeometricGraph.sample_connected(
...     24, np.random.default_rng(3), radius_constant=3.0
... )
>>> substrate = DynamicSubstrate(graph, FaultSpec(), seed=1)
>>> dyn = DynamicGossip(RandomizedGossip(substrate.neighbors), substrate)
>>> values = np.random.default_rng(5).normal(size=24)
>>> lhs = dyn.run(values, 0.25, np.random.default_rng(7))
>>> rhs = RandomizedGossip(graph.neighbors).run(
...     values, 0.25, np.random.default_rng(7)
... )
>>> bool((lhs.values == rhs.values).all()) and lhs.ticks == rhs.ticks
True
"""

from __future__ import annotations

import math

import numpy as np

from repro.dynamics.schedule import FaultSchedule, FaultSpec, LossChannel
from repro.gossip.base import AsynchronousGossip
from repro.graphs.rgg import RandomGeometricGraph
from repro.metrics.error import deviation_norm, primary_field
from repro.observability import events as _events
from repro.observability import metrics as _metrics
from repro.routing.cache import CachedGreedyRouter
from repro.routing.cost import TransmissionCounter
from repro.routing.greedy import RouteResult

__all__ = [
    "DynamicGossip",
    "DynamicSubstrate",
    "LossyRouter",
    "live_node_error",
]


def live_node_error(
    values: np.ndarray, initial_values: np.ndarray, live: np.ndarray
) -> float:
    """Normalized deviation of the *live* nodes around their own mean.

    Under churn the meaningful convergence question is whether the
    surviving population agrees — crashed nodes hold stale frozen values
    that the global :func:`~repro.metrics.error.normalized_error` would
    charge against the run forever.  The denominator stays the full
    initial deviation (the paper's ``‖x(0)‖``) so the metric is
    comparable with the oracular error the engine records.

    ``(n, k)`` field matrices reduce to the primary field (column 0,
    like the engine's oracular error) rather than silently flattening a
    matrix into one norm across mixed columns.
    """
    live = np.asarray(live, dtype=bool)
    if not live.any():
        return 0.0
    initial = primary_field(np.asarray(initial_values, dtype=np.float64))
    initial_norm = deviation_norm(initial)
    if initial_norm == 0.0:
        return 0.0
    alive = primary_field(np.asarray(values, dtype=np.float64))[live]
    return deviation_norm(alive) / initial_norm


class DynamicSubstrate:
    """A time-varying view over a base graph, driven by a fault schedule.

    Duck-types the :class:`~repro.graphs.rgg.RandomGeometricGraph`
    surface the protocols consume (``n``, ``positions``, ``radius``,
    ``neighbors``, ``nearest_node``), so protocol factories accept it in
    place of the graph.  The masked ``neighbors`` list is updated *in
    place* at epoch boundaries; anything holding the list (routers, the
    randomized protocol) sees the current topology without re-wiring.

    Parameters
    ----------
    base:
        The pristine substrate; never mutated.
    spec_or_schedule:
        A :class:`FaultSpec` (a schedule is derived with ``seed``) or a
        ready :class:`FaultSchedule`.
    seed:
        Schedule seed when a spec is given; ignored for a schedule.
    """

    def __init__(
        self,
        base: RandomGeometricGraph,
        spec_or_schedule: FaultSpec | FaultSchedule,
        seed: int = 0,
    ):
        if isinstance(spec_or_schedule, FaultSchedule):
            schedule = spec_or_schedule
            if schedule.n != base.n:
                raise ValueError(
                    f"schedule sized for n={schedule.n} cannot drive a "
                    f"substrate of n={base.n}"
                )
        else:
            schedule = FaultSchedule(spec_or_schedule, base.n, seed)
        self.base = base
        self.schedule = schedule
        self.spec = schedule.spec
        #: The per-hop loss stream every lossy primitive of this run shares.
        self.channel: LossChannel = schedule.loss_channel()
        self.radius = base.radius
        self.positions = base.positions.copy()
        self._grid = base.grid
        #: Current adjacency of the *underlying* (fault-free) topology;
        #: replaced wholesale when jitter rebuilds the graph.
        self._base_neighbors: list[np.ndarray] = list(base.neighbors)
        #: The masked adjacency protocols and routers read.  Mutated in
        #: place (element assignment) so references stay live.
        self.neighbors: list[np.ndarray] = list(base.neighbors)
        self.live = np.ones(base.n, dtype=bool)
        self._epoch = 0
        self._caches: list[CachedGreedyRouter] = []
        self.crashes = 0
        self.recoveries = 0
        self._link_down_ids: np.ndarray | None = None
        self._rebuild_edge_index()

    # -- graph surface -------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes (live and crashed)."""
        return self.base.n

    @property
    def epoch(self) -> int:
        """The epoch the substrate currently sits in."""
        return self._epoch

    @property
    def live_count(self) -> int:
        """Number of currently live nodes."""
        return int(self.live.sum())

    def nearest_node(self, point: np.ndarray) -> int:
        """Nearest node to ``point`` (live or not — radios cannot know)."""
        return self._grid.nearest(point)

    def degree(self, node: int) -> int:
        """Current (masked) degree of ``node``."""
        return len(self.neighbors[node])

    # -- cache registration --------------------------------------------------

    def register_cache(self, cache: CachedGreedyRouter) -> None:
        """Invalidate ``cache`` whenever this substrate's adjacency changes.

        The cache must have been built over this substrate (its columns
        snapshot ``self.neighbors``); on every epoch transition it is
        patched at exactly the changed nodes, or dropped wholesale after
        a jitter rebuild.
        """
        self._caches.append(cache)

    # -- time ----------------------------------------------------------------

    def advance_to(self, tick: int) -> None:
        """Apply every epoch boundary at or before ``tick`` (idempotent)."""
        target = tick // self.spec.epoch_ticks
        while self._epoch < target:
            self._epoch += 1
            self._apply_epoch(self._epoch)

    def _apply_epoch(self, epoch: int) -> None:
        events = self.schedule.epoch_events(epoch)
        changed: set[int] = set()

        if events.jitter is not None:
            self._apply_jitter(events.jitter)
            changed = None  # everything moved; signal a full invalidation
        if events.crash.any() or events.recover.any():
            toggled, crashed, recovered = self._apply_churn(
                events.crash, events.recover
            )
            if changed is not None:
                changed.update(toggled)
            if crashed or recovered:
                recorder = _events.active()
                if recorder is not None:
                    recorder.emit(
                        {
                            "e": "epoch",
                            "epoch": epoch,
                            "tick": epoch * self.spec.epoch_ticks,
                            "crashed": crashed,
                            "recovered": recovered,
                        }
                    )
                registry = _metrics.active()
                if registry is not None:
                    registry.counter(
                        "repro_fault_crashes_total", "Nodes crashed by churn."
                    ).inc(len(crashed))
                    registry.counter(
                        "repro_fault_recoveries_total",
                        "Nodes recovered by churn.",
                    ).inc(len(recovered))
                    registry.gauge(
                        "repro_fault_live_fraction",
                        "Fraction of nodes live after the last churn epoch.",
                    ).set(float(self.live.mean()))
        # Link draws are sized by the *post-jitter* edge list — their
        # stream is separate from the node events precisely so this
        # ordering is safe (see FaultSchedule.link_events).
        link_changed = self._apply_links(
            self.schedule.link_events(epoch, len(self._edge_u))
        )
        if changed is not None:
            changed.update(link_changed)

        if changed is None:
            self._refresh_mask(None)
            for cache in self._caches:
                cache.invalidate(None)
        elif changed:
            # Adjacency arrays can survive a toggle untouched (e.g. a link
            # failing between two already-crashed nodes); only genuinely
            # changed rows need cache repair.
            actually_changed = self._refresh_mask(changed)
            if actually_changed:
                rows = sorted(actually_changed)
                for cache in self._caches:
                    cache.invalidate(rows)

    def _apply_jitter(self, jitter: np.ndarray) -> None:
        """Move every node and rebuild the base adjacency and grid."""
        moved = np.clip(self.positions + jitter, 0.0, 1.0)
        self.positions[:] = moved
        rebuilt = RandomGeometricGraph.build(self.positions.copy(), self.radius)
        self._base_neighbors = list(rebuilt.neighbors)
        self._grid = rebuilt.grid
        self._rebuild_edge_index()

    def _apply_churn(
        self, crash: np.ndarray, recover: np.ndarray
    ) -> tuple[set[int], list[int], list[int]]:
        """Toggle liveness.

        Returns ``(toggled, crashed, recovered)``: the nodes whose
        adjacency may have changed, plus the nodes that actually went
        down / came back this epoch (post live-floor clamping — the
        observable transitions, not the schedule's raw draws).
        """
        floor = math.ceil(self.spec.min_live_fraction * self.n)
        candidates = np.nonzero(self.live & crash)[0]
        headroom = self.live_count - floor
        if headroom < candidates.size:
            candidates = candidates[: max(headroom, 0)]
        recovering = np.nonzero(~self.live & recover)[0]
        toggled: set[int] = set()
        crashed: list[int] = []
        recovered: list[int] = []
        for node in candidates:
            self.live[node] = False
            self.crashes += 1
            crashed.append(int(node))
            toggled.add(int(node))
            toggled.update(int(v) for v in self._base_neighbors[node])
        for node in recovering:
            self.live[node] = True
            self.recoveries += 1
            recovered.append(int(node))
            toggled.add(int(node))
            toggled.update(int(v) for v in self._base_neighbors[node])
        return toggled, crashed, recovered

    def _apply_links(self, link_down: np.ndarray | None) -> set[int]:
        """Swap in this epoch's down-link set; returns affected endpoints."""
        affected: set[int] = set()
        if self._link_down_ids is not None:
            for edge in self._link_down_ids:
                affected.add(int(self._edge_u[edge]))
                affected.add(int(self._edge_v[edge]))
        if link_down is None or not link_down.any():
            self._link_down_ids = None
            self._link_down_mask = None
        else:
            self._link_down_ids = np.nonzero(link_down)[0]
            self._link_down_mask = link_down
            for edge in self._link_down_ids:
                affected.add(int(self._edge_u[edge]))
                affected.add(int(self._edge_v[edge]))
        return affected

    def _refresh_mask(self, nodes: set[int] | None) -> set[int] | None:
        """Recompute masked adjacency (for ``nodes``, or everywhere).

        Returns the set of nodes whose masked array actually changed, or
        ``None`` when the refresh was global.
        """
        targets = range(self.n) if nodes is None else sorted(nodes)
        changed: set[int] | None = None if nodes is None else set()
        for i in targets:
            new = self._masked_adjacency(i)
            if changed is not None and not np.array_equal(
                new, self.neighbors[i]
            ):
                changed.add(i)
            self.neighbors[i] = new
        return changed

    def _masked_adjacency(self, node: int) -> np.ndarray:
        if not self.live[node]:
            return _EMPTY_ADJACENCY
        adj = self._base_neighbors[node]
        if adj.size == 0:
            return adj
        keep = self.live[adj]
        if self._link_down_mask is not None:
            keep &= ~self._link_down_mask[self._edge_ids[node]]
        if keep.all():
            return adj
        return adj[keep]

    def _rebuild_edge_index(self) -> None:
        """Base edge list ``(u < v)`` plus per-node edge-id alignment."""
        edge_u: list[int] = []
        edge_v: list[int] = []
        edge_of: dict[tuple[int, int], int] = {}
        for i, adj in enumerate(self._base_neighbors):
            for j in adj:
                j = int(j)
                if j > i:
                    edge_of[(i, j)] = len(edge_u)
                    edge_u.append(i)
                    edge_v.append(j)
        self._edge_u = np.array(edge_u, dtype=np.int64)
        self._edge_v = np.array(edge_v, dtype=np.int64)
        self._edge_ids = [
            np.array(
                [edge_of[(min(i, int(j)), max(i, int(j)))] for j in adj],
                dtype=np.int64,
            )
            for i, adj in enumerate(self._base_neighbors)
        ]
        self._link_down_ids = None
        self._link_down_mask: np.ndarray | None = None


#: Shared empty adjacency for crashed nodes (never mutated).
_EMPTY_ADJACENCY = np.empty(0, dtype=np.int64)


class LossyRouter:
    """A router whose transmissions can be lost mid-route.

    Wraps any object with the :class:`~repro.routing.greedy.GreedyRouter`
    routing surface (the plain router or the memoized
    :class:`~repro.routing.cache.CachedGreedyRouter`).  The wrapped
    router computes the intended path as usual; the
    :class:`~repro.dynamics.schedule.LossChannel` then decides the fate
    of each hop in order.  On a loss at transmission ``k`` the packet
    died between hops: ``k`` transmissions are charged under
    ``"route_lost"``, the returned path is truncated at the last node
    reached, and ``delivered`` is ``False`` — the protocols' existing
    void-abort handling conserves the sum.  With ``loss_prob == 0`` the
    wrapper charges and returns exactly what the wrapped router would
    (bit-identity, tested).
    """

    #: Category the severed hops of a lost route are charged under; the
    #: per-cell "wasted transmissions" metric reads this key.
    LOST_CATEGORY = "route_lost"

    def __init__(self, inner, channel: LossChannel):
        self.inner = inner
        self.channel = channel

    def route_to_node(
        self,
        source: int,
        target_node: int,
        counter: TransmissionCounter | None = None,
        category: str = "route",
    ) -> RouteResult:
        """Same contract as the wrapped router, plus loss truncation."""
        result, _ = self._route_node(source, target_node, counter, category)
        return result

    def route_to_position(
        self,
        source: int,
        target: np.ndarray,
        counter: TransmissionCounter | None = None,
        category: str = "route",
    ) -> RouteResult:
        """Position routing with loss; a severed walk is *not* delivered."""
        result = self.inner.route_to_position(source, target)
        delivered, _ = self._deliver(result, counter, category)
        return delivered

    def round_trip(
        self,
        source: int,
        target_node: int,
        counter: TransmissionCounter | None = None,
        category: str = "route",
    ) -> tuple[RouteResult, RouteResult]:
        """Out-and-back routing; a forward loss forfeits the reply leg.

        A forward *void* still routes the reply from the stop node (the
        historical semantics, preserved bit for bit at zero loss); a
        forward *loss* means the packet no longer exists, so the reply
        never launches and costs nothing.
        """
        forward, lost = self._route_node(source, target_node, counter, category)
        if lost:
            return forward, RouteResult(
                path=(forward.destination,), delivered=False
            )
        backward, _ = self._route_node(
            forward.destination, source, counter, category
        )
        return forward, backward

    def _route_node(
        self,
        source: int,
        target_node: int,
        counter: TransmissionCounter | None,
        category: str,
    ) -> tuple[RouteResult, bool]:
        result = self.inner.route_to_node(source, target_node)
        return self._deliver(result, counter, category)

    def _deliver(
        self,
        result: RouteResult,
        counter: TransmissionCounter | None,
        category: str,
    ) -> tuple[RouteResult, bool]:
        hops = result.hops
        delivered, attempted = self.channel.attempt(hops)
        if delivered:
            if counter is not None and hops:
                counter.charge(hops, category)
                recorder = _events.active()
                if recorder is not None:
                    recorder.emit({"e": "route", "hops": hops, "cat": category})
            return result, False
        if counter is not None and attempted:
            counter.charge(attempted, self.LOST_CATEGORY)
            recorder = _events.active()
            if recorder is not None:
                recorder.emit(
                    {"e": "drop", "tx": attempted, "cat": self.LOST_CATEGORY}
                )
            registry = _metrics.active()
            if registry is not None:
                registry.counter(
                    "repro_fault_lost_transmissions_total",
                    "Transmissions charged to dropped routes.",
                ).inc(attempted)
        return (
            RouteResult(path=result.path[:attempted], delivered=False),
            True,
        )


class DynamicGossip(AsynchronousGossip):
    """Run any tick-driven protocol on a :class:`DynamicSubstrate`.

    The wrapper owns the run's notion of time: it counts ticks, applies
    the substrate's epoch transitions exactly at their boundaries
    (splitting batched owner blocks there, so results stay independent of
    the engine's block chunking), drops ticks owned by crashed nodes, and
    injects the substrate's loss channel into the protocol's routers and
    loss hooks.  The wrapped protocol must be built *over the substrate*
    (its routers must read the masked adjacency), which is what
    :func:`repro.engine.executor.build_cell_algorithm` arranges.

    Round-based protocols (``batching_capability == "rounds"``, e.g. the
    hierarchical executor) have no tick loop to interleave with epoch
    boundaries and are rejected.

    Attributes
    ----------
    wasted_ticks:
        Clock ticks owned by crashed nodes (no action, no transmissions).
    """

    def __init__(self, inner: AsynchronousGossip, substrate: DynamicSubstrate):
        if not isinstance(inner, AsynchronousGossip):
            raise TypeError(
                f"{type(inner).__name__} is not tick-driven; fault dynamics "
                "only apply to AsynchronousGossip protocols (round-based "
                "protocols have no tick loop to interleave epochs with)"
            )
        if not getattr(inner, "supports_dynamics", True):
            raise TypeError(
                f"{type(inner).__name__} declares supports_dynamics=False "
                "(it has no radio model for faults to act on — e.g. the "
                "K_n affine comparator writes to arbitrary nodes, which "
                "would break the crashed-value freeze invariant)"
            )
        if inner.n != substrate.n:
            raise ValueError(
                f"protocol sized for n={inner.n} cannot run on a substrate "
                f"of n={substrate.n}"
            )
        super().__init__(inner.n)
        self.inner = inner
        self.substrate = substrate
        # The engine reports the inner protocol's name (aggregation and
        # stores key cells by algorithm name, not by wrapper).
        self.name = inner.name
        self.requires_centered_field = getattr(
            inner, "requires_centered_field", False
        )
        # Epoch masking and loss channels never read the values, so the
        # wrapper is exactly as multi-field-capable as the protocol it
        # wraps (the engine's per-column fallback cannot rerun a wrapper
        # whose epoch clock already advanced, so inner protocols without
        # multi-field support stay scalar-only under dynamics).
        self.supports_multifield = getattr(inner, "supports_multifield", False)
        #: The epoch clock and loss streams advance across runs, so a
        #: rerun would replay columns on a spent fault timeline.
        self.multifield_fallback_safe = False
        self.wasted_ticks = 0
        self._tick = 0
        channel = substrate.channel
        if hasattr(inner, "route_cache"):
            substrate.register_cache(inner.route_cache)
            inner.route_cache = LossyRouter(inner.route_cache, channel)
        if hasattr(inner, "router"):
            inner.router = LossyRouter(inner.router, channel)
        # Single-hop / reverse-flash loss hooks (protocols that transmit
        # outside their router): see RandomizedGossip.loss_channel and
        # PathAveragingGossip.flash_channel.
        if hasattr(inner, "loss_channel"):
            inner.loss_channel = channel
        if hasattr(inner, "flash_channel"):
            inner.flash_channel = channel

    # -- protocol surface ----------------------------------------------------

    @property
    def ticks_elapsed(self) -> int:
        """Global clock ticks this wrapper has executed so far."""
        return self._tick

    @property
    def aborted_routes(self) -> int:
        """Operations aborted mid-transaction (voids plus severed routes)."""
        return int(getattr(self.inner, "failed_exchanges", 0))

    def tick(
        self,
        node: int,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        """One tick: advance epochs, then delegate unless the owner is dead."""
        self.substrate.advance_to(self._tick)
        self._tick += 1
        if not self.substrate.live[node]:
            self.wasted_ticks += 1
            recorder = _events.active()
            if recorder is not None:
                recorder.emit({"e": "dead", "ticks": 1})
            registry = _metrics.active()
            if registry is not None:
                registry.counter(
                    "repro_fault_dead_ticks_total",
                    "Ticks owned by crashed nodes (wasted).",
                ).inc()
            return
        self.inner.tick(node, values, counter, rng)

    def tick_block(
        self,
        owners: np.ndarray,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        """Batched ticks, split at epoch boundaries, dead owners dropped.

        Segments are delimited by the *absolute* tick index, and the
        liveness filter is a deterministic function of the schedule — so
        the inner protocol sees the same live-owner sequence (and draws
        the same randomness) however the engine chunked the run, which is
        what keeps the block-size-invariance contract intact (tested).
        """
        recorder = _events.active()
        epoch_ticks = self.substrate.spec.epoch_ticks
        start = self._tick
        total = len(owners)
        index = 0
        while index < total:
            tick = start + index
            self.substrate.advance_to(tick)
            boundary = (tick // epoch_ticks + 1) * epoch_ticks
            segment_end = min(total, index + (boundary - tick))
            segment = owners[index:segment_end]
            mask = self.substrate.live[segment]
            dead = int(mask.size - mask.sum())
            if dead:
                self.wasted_ticks += dead
                segment = segment[mask]
                if recorder is not None:
                    recorder.emit({"e": "dead", "ticks": dead})
                registry = _metrics.active()
                if registry is not None:
                    registry.counter(
                        "repro_fault_dead_ticks_total",
                        "Ticks owned by crashed nodes (wasted).",
                    ).inc(dead)
            if segment.size:
                self.inner.tick_block(segment, values, counter, rng)
            index = segment_end
        self._tick = start + total

    def tick_budget(self, epsilon: float) -> int:
        """The wrapped budget, doubled when faults are live.

        Wasted ticks (dead owners) and aborted transactions slow
        convergence; doubling the inner protocol's already-generous
        budget keeps healthy faulted runs from hitting the cap while
        still terminating hopeless ones.
        """
        budget = self.inner.tick_budget(epsilon)
        return 2 * budget if self.spec_enabled else budget

    @property
    def spec_enabled(self) -> bool:
        """Whether the substrate's fault spec perturbs this run at all."""
        return self.substrate.spec.enabled

    def fault_metrics(
        self, values: np.ndarray, initial_values: np.ndarray
    ) -> dict[str, float]:
        """The per-cell fault observability payload the store persists."""
        substrate = self.substrate
        return {
            "aborted_routes": float(self.aborted_routes),
            "wasted_ticks": float(self.wasted_ticks),
            "lost_transmissions": float(substrate.channel.losses),
            "crashes": float(substrate.crashes),
            "recoveries": float(substrate.recoveries),
            "live_fraction": float(substrate.live.mean()),
            "live_node_error": live_node_error(
                values, initial_values, substrate.live
            ),
        }
