"""Deterministic, seed-derived fault schedules.

The paper's guarantees live in the w.h.p. regime — a connected ``G(n, r)``
with no routing voids — but the gossip lineage it belongs to was motivated
by *unreliable* sensor networks: Dimakis, Sarwate & Wainwright explicitly
target nodes that fail and links that drop, and path averaging is only
order-optimal while its long routes survive.  This module describes those
dynamics as data:

* :class:`FaultSpec` — the static description of a fault regime: node
  churn (crash/recover), transient per-epoch link failures, per-hop
  message loss, and optional positional jitter.  Parsed from compact
  ``"churn=0.02,loss=0.05"`` strings (the CLI's ``--faults``) or picked
  from :data:`FAULT_PRESETS`.
* :class:`FaultSchedule` — the *realisation* of a spec for one run: a
  deterministic function of ``(spec, n, seed)`` producing vectorized
  per-epoch event streams (:class:`EpochEvents`) and the per-hop
  :class:`LossChannel`.  Identical seeds yield identical schedules on any
  machine and under any executor (serial or process pool), because every
  stream derives from a :class:`numpy.random.SeedSequence` keyed only by
  ``(seed, purpose, epoch)``.

Time is divided into **epochs** of ``epoch_ticks`` global clock ticks.
Epoch 0 is always pristine (the substrate starts as the base graph);
the events of epoch ``k ≥ 1`` apply when the run's tick counter crosses
``k · epoch_ticks``.  Message loss is *not* epoch-quantised: the
:class:`LossChannel` draws one uniform per attempted transmission, in
tick order, from its own dedicated stream — so protocol randomness and
fault randomness can never perturb each other, which is what keeps
fault-free runs bit-identical to the legacy engine path (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FAULT_PRESETS",
    "EpochEvents",
    "FaultSchedule",
    "FaultSpec",
    "LossChannel",
]

#: Stream-purpose tags mixed into the SeedSequence entropy so the node
#: epoch streams, the link streams, and the loss stream of one schedule
#: can never collide.  Links get their own per-epoch stream because the
#: size of a link draw is the *current* edge count, which jitter can
#: change within the same epoch transition — the node draws must not
#: shift when it does.
_EPOCH_STREAM = 0xE19C
_LINK_STREAM = 0x11AC
_LOSS_STREAM = 0x105E

#: ``--faults`` key aliases → :class:`FaultSpec` field names.
_SPEC_KEYS = {
    "churn": "churn_rate",
    "churn_rate": "churn_rate",
    "recover": "recover_rate",
    "recover_rate": "recover_rate",
    "links": "link_failure_rate",
    "link_failure_rate": "link_failure_rate",
    "loss": "loss_prob",
    "loss_prob": "loss_prob",
    "jitter": "jitter_sigma",
    "jitter_sigma": "jitter_sigma",
    "epoch": "epoch_ticks",
    "epoch_ticks": "epoch_ticks",
    "floor": "min_live_fraction",
    "min_live_fraction": "min_live_fraction",
}

#: Canonical short key per field (the inverse of :data:`_SPEC_KEYS`),
#: in the order :meth:`FaultSpec.canonical` renders them.
_CANONICAL_KEYS = (
    ("churn", "churn_rate"),
    ("recover", "recover_rate"),
    ("links", "link_failure_rate"),
    ("loss", "loss_prob"),
    ("jitter", "jitter_sigma"),
    ("epoch", "epoch_ticks"),
    ("floor", "min_live_fraction"),
)


@dataclass(frozen=True)
class FaultSpec:
    """A fault regime: rates per epoch, loss per hop, one tick quantum.

    Attributes
    ----------
    churn_rate:
        Probability that each *live* node crashes at an epoch boundary.
        A crashed node freezes its value, leaves every adjacency list,
        and wastes any clock tick it owns.
    recover_rate:
        Probability that each *crashed* node recovers at an epoch
        boundary, rejoining with the value it froze at crash time (so the
        global sum is conserved through churn).  The default is non-zero
        so that ``--churn-rate`` alone describes a recovering population.
    link_failure_rate:
        Probability that each base edge is down *for one epoch* (links
        heal implicitly at the next boundary; a fresh draw decides again).
    loss_prob:
        Per-hop, per-transmission loss probability.  A lost transmission
        severs the operation mid-transaction: the hops already attempted
        are charged (category ``"route_lost"`` / ``"near_lost"``) and the
        whole exchange aborts with no value update — the same
        conservation contract as the existing routing-void aborts.
    jitter_sigma:
        Standard deviation of the per-epoch Gaussian position jitter
        (a crude mobility model).  Non-zero jitter rebuilds the base
        adjacency at every epoch boundary; expensive, off by default.
    epoch_ticks:
        Epoch length in global clock ticks.
    min_live_fraction:
        Crash floor: churn never takes the live population below
        ``ceil(min_live_fraction · n)`` nodes, so a run always has a
        population left to converge on.
    """

    churn_rate: float = 0.0
    recover_rate: float = 0.25
    link_failure_rate: float = 0.0
    loss_prob: float = 0.0
    jitter_sigma: float = 0.0
    epoch_ticks: int = 512
    min_live_fraction: float = 0.5

    def __post_init__(self) -> None:
        for name in (
            "churn_rate",
            "recover_rate",
            "link_failure_rate",
            "loss_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        if self.jitter_sigma < 0:
            raise ValueError(
                f"jitter_sigma must be non-negative, got {self.jitter_sigma}"
            )
        if self.epoch_ticks < 1:
            raise ValueError(
                f"epoch_ticks must be >= 1, got {self.epoch_ticks}"
            )
        if not 0.0 < self.min_live_fraction <= 1.0:
            raise ValueError(
                "min_live_fraction must lie in (0, 1], got "
                f"{self.min_live_fraction}"
            )

    @property
    def enabled(self) -> bool:
        """Whether this spec perturbs a run at all.

        A disabled spec (all rates zero, no jitter) makes the dynamics
        wrapper a bit-exact pass-through of the fault-free engine path.

        >>> FaultSpec().enabled
        False
        >>> FaultSpec(loss_prob=0.05).enabled
        True
        """
        return bool(
            self.churn_rate > 0
            or self.link_failure_rate > 0
            or self.loss_prob > 0
            or self.jitter_sigma > 0
        )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse a preset name or a ``key=value,...`` spec string.

        Keys accept short aliases (``churn``, ``recover``, ``links``,
        ``loss``, ``jitter``, ``epoch``, ``floor``) or the full field
        names.  Unknown keys and out-of-range values raise
        :class:`ValueError` — the same validation the dataclass applies.

        >>> FaultSpec.parse("none").enabled
        False
        >>> FaultSpec.parse("churn=0.1,loss=0.05").loss_prob
        0.05
        """
        text = text.strip()
        if text in FAULT_PRESETS:
            return FAULT_PRESETS[text]
        if not text:
            raise ValueError("empty fault spec; use 'none' for no faults")
        kwargs: dict[str, float | int] = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(
                    f"bad fault spec item {item!r}; expected key=value "
                    f"(keys: {sorted(set(_SPEC_KEYS))}) or a preset name "
                    f"({sorted(FAULT_PRESETS)})"
                )
            field = _SPEC_KEYS.get(key.strip())
            if field is None:
                raise ValueError(
                    f"unknown fault spec key {key.strip()!r}; known keys: "
                    f"{sorted(set(_SPEC_KEYS))}"
                )
            try:
                kwargs[field] = (
                    int(value) if field == "epoch_ticks" else float(value)
                )
            except ValueError:
                raise ValueError(
                    f"bad value for fault spec key {key.strip()!r}: {value!r}"
                ) from None
        return cls(**kwargs)

    def canonical(self) -> str:
        """The stable one-line rendering of this spec.

        ``"none"`` for a disabled spec; otherwise the short keys of every
        field that differs from the defaults, in a fixed order — the form
        the CLI writes into :class:`~repro.experiments.config.ExperimentConfig`
        and the store content key hashes.

        >>> FaultSpec.parse("loss=0.05,churn=0.02").canonical()
        'churn=0.02,loss=0.05'
        >>> FaultSpec().canonical()
        'none'
        """
        if not self.enabled:
            return "none"
        default = FaultSpec()
        parts = []
        for key, field in _CANONICAL_KEYS:
            value = getattr(self, field)
            if value != getattr(default, field):
                # repr round-trips exactly (%g would truncate to 6
                # significant digits — a silent store-key collision — and
                # renders large epoch counts unparseably as 1e+06).
                parts.append(f"{key}={value!r}")
        return ",".join(parts)


#: Named fault regimes the CLI accepts in place of a spec string.
FAULT_PRESETS: dict[str, FaultSpec] = {
    "none": FaultSpec(),
    "lossy": FaultSpec(loss_prob=0.05),
    "churny": FaultSpec(churn_rate=0.02, recover_rate=0.2),
    "harsh": FaultSpec(
        churn_rate=0.05,
        recover_rate=0.2,
        link_failure_rate=0.05,
        loss_prob=0.05,
    ),
}


@dataclass(frozen=True)
class EpochEvents:
    """The vectorized events of one epoch boundary.

    Attributes
    ----------
    crash:
        Boolean ``(n,)`` flags — live nodes so flagged crash (subject to
        the spec's ``min_live_fraction`` floor).
    recover:
        Boolean ``(n,)`` flags — crashed nodes so flagged recover.
    jitter:
        ``(n, 2)`` Gaussian position offsets, or ``None`` without jitter.

    Link failures are *not* here: their draw is sized by the substrate's
    current edge count, which jitter may change mid-transition, so they
    come from :meth:`FaultSchedule.link_events` on a dedicated stream.
    """

    crash: np.ndarray
    recover: np.ndarray
    jitter: np.ndarray | None


class LossChannel:
    """The per-hop message-loss stream of one run.

    Draws one uniform per *attempted* transmission, strictly in tick
    order, from a dedicated generator — so consumption is independent of
    how the engine chunked the run into blocks, and a ``loss_prob`` of 0
    consumes nothing at all (the fault-free bit-identity guarantee).
    Draws are buffered in vectorized refills to keep the per-hop cost at
    an array lookup.
    """

    def __init__(
        self,
        loss_prob: float,
        rng: np.random.Generator,
        buffer_size: int = 4096,
    ):
        if not 0.0 <= loss_prob <= 1.0:
            raise ValueError(f"loss_prob must lie in [0, 1], got {loss_prob}")
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        self.loss_prob = loss_prob
        self._rng = rng
        self._buffer_size = buffer_size
        self._buffer = np.empty(0, dtype=np.float64)
        self._cursor = 0
        #: Total transmissions lost on this channel (observability).
        self.losses = 0

    def _next(self) -> float:
        if self._cursor >= self._buffer.size:
            self._buffer = self._rng.random(self._buffer_size)
            self._cursor = 0
        value = self._buffer[self._cursor]
        self._cursor += 1
        return float(value)

    def attempt(self, hops: int) -> tuple[bool, int]:
        """Try ``hops`` consecutive transmissions.

        Returns ``(delivered, attempted)``: ``(True, hops)`` when every
        transmission got through, else ``(False, k)`` where the ``k``-th
        transmission was the one lost — ``k`` transmissions were sent (and
        should be charged), ``k − 1`` arrived.  With ``loss_prob == 0``
        no randomness is consumed.
        """
        if hops < 0:
            raise ValueError(f"hops must be non-negative, got {hops}")
        if self.loss_prob <= 0.0 or hops == 0:
            return True, hops
        for sent in range(1, hops + 1):
            if self._next() < self.loss_prob:
                self.losses += 1
                return False, sent
        return True, hops


class FaultSchedule:
    """The deterministic realisation of a :class:`FaultSpec` for one run.

    Parameters
    ----------
    spec:
        The fault regime.
    n:
        Number of nodes (sizes the per-epoch node streams).
    seed:
        Root of every stream this schedule owns.  Two schedules built
        from equal ``(spec, n, seed)`` produce identical events and an
        identical loss stream — the property the serial-vs-parallel
        executor test pins down.

    >>> schedule = FaultSchedule(FaultSpec(churn_rate=0.5), n=8, seed=7)
    >>> again = FaultSchedule(FaultSpec(churn_rate=0.5), n=8, seed=7)
    >>> bool(
    ...     (schedule.epoch_events(1).crash
    ...      == again.epoch_events(1).crash).all()
    ... )
    True
    """

    def __init__(self, spec: FaultSpec, n: int, seed: int = 0):
        if n < 1:
            raise ValueError(f"need at least one node, got {n}")
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.spec = spec
        self.n = n
        self.seed = seed

    def epoch_rng(self, epoch: int) -> np.random.Generator:
        """The dedicated generator of epoch ``epoch``'s event draws."""
        return np.random.default_rng(
            np.random.SeedSequence([_EPOCH_STREAM, self.seed, epoch])
        )

    def epoch_events(self, epoch: int) -> EpochEvents:
        """The node events applying at the boundary of epoch ``epoch`` (≥ 1).

        Draw order within the epoch generator is fixed by the spec, and
        every draw is node-sized, so the events are a pure function of
        ``(spec, n, seed, epoch)``.
        """
        if epoch < 1:
            raise ValueError(
                f"epoch 0 is pristine by construction; got epoch {epoch}"
            )
        spec = self.spec
        rng = self.epoch_rng(epoch)
        if spec.churn_rate > 0:
            crash = rng.random(self.n) < spec.churn_rate
            recover = rng.random(self.n) < spec.recover_rate
        else:
            crash = np.zeros(self.n, dtype=bool)
            recover = np.zeros(self.n, dtype=bool)
        jitter = None
        if spec.jitter_sigma > 0:
            jitter = spec.jitter_sigma * rng.standard_normal((self.n, 2))
        return EpochEvents(crash=crash, recover=recover, jitter=jitter)

    def link_events(self, epoch: int, edge_count: int) -> np.ndarray | None:
        """This epoch's down-link flags over the *current* edge list.

        ``edge_count`` must be the substrate's edge count *after* any
        jitter rebuild of the same transition — that is why links live on
        their own ``(seed, epoch)``-keyed stream rather than inside
        :meth:`epoch_events`: sizing this draw can never perturb the node
        draws.  ``None`` when the spec has no link failures or there are
        no edges.
        """
        if epoch < 1:
            raise ValueError(
                f"epoch 0 is pristine by construction; got epoch {epoch}"
            )
        spec = self.spec
        if spec.link_failure_rate <= 0 or edge_count <= 0:
            return None
        rng = np.random.default_rng(
            np.random.SeedSequence([_LINK_STREAM, self.seed, epoch])
        )
        return rng.random(edge_count) < spec.link_failure_rate

    def loss_channel(self) -> LossChannel:
        """A fresh :class:`LossChannel` over this schedule's loss stream."""
        return LossChannel(
            self.spec.loss_prob,
            np.random.default_rng(
                np.random.SeedSequence([_LOSS_STREAM, self.seed])
            ),
        )
