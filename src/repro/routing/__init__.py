"""Packet-level communication primitives.

Three mechanisms from the paper and its predecessor (Dimakis et al. 2006):

* **Greedy geographic routing** (:mod:`repro.routing.greedy`): forward a
  packet hop by hop to the neighbour nearest the target location.  Used by
  geographic gossip and by every `Far` exchange / high-level activation in
  the hierarchical protocol.
* **Flooding** (:mod:`repro.routing.flooding`): broadcast within a node
  subset; used by `Activate.square` / `Deactivate.square` at Level 1.
* **Rejection sampling** (:mod:`repro.routing.rejection`): turn "nearest
  node to a uniform location" (biased by Voronoi cell areas) into a nearly
  uniform distribution over nodes.

Greedy routing additionally has an exact memoized form
(:mod:`repro.routing.cache`): greedy hops are deterministic per
``(node, target)``, so the engine's batched tick path replays cached
next-hop chains instead of re-walking paths, with identical results.

All primitives charge their cost to a shared
:class:`~repro.routing.cost.TransmissionCounter`.
"""

from repro.routing.cache import CachedGreedyRouter
from repro.routing.cost import TransmissionCounter
from repro.routing.flooding import flood
from repro.routing.greedy import GreedyRouter, RouteResult
from repro.routing.rejection import RejectionSampler, voronoi_cell_areas

__all__ = [
    "CachedGreedyRouter",
    "GreedyRouter",
    "RejectionSampler",
    "RouteResult",
    "TransmissionCounter",
    "flood",
    "voronoi_cell_areas",
]
