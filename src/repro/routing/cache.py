"""Memoized greedy routing: per-target next-hop columns over :class:`GreedyRouter`.

Greedy geographic forwarding is deterministic: the hop taken at node ``u``
towards target node ``t`` depends only on ``(u, t)`` and the fixed graph.
The first time a target ``t`` is routed to, :class:`CachedGreedyRouter`
builds the *entire* next-hop column for ``t`` — the greedy successor of
every node — in one vectorized segment-min pass over the flattened
adjacency (``np.minimum.reduceat``).  One column build costs about as
much as a single scalar route walk, and afterwards every route towards
``t``, from any source, is a chain of O(1) array lookups.

The cache is **exact**: the column applies the same elementwise IEEE
arithmetic and the same first-minimum tie-breaking as the scalar
:meth:`GreedyRouter._closest_neighbor` step, so
:class:`CachedGreedyRouter` produces bit-identical
:class:`~repro.routing.greedy.RouteResult` paths, delivery flags and
transmission charges to the uncached router (tested).  It exists so the
engine's batched tick path (`tick_block` in the routed protocols) can
charge routed transmission costs without re-walking greedy paths; the
legacy scalar loop keeps using the plain router.

Memory is one ``n``-vector of node indices per distinct target ever
routed to — at most O(n²) integers, and in practice bounded by the
targets a run actually draws.

>>> import numpy as np
>>> from repro.graphs.rgg import RandomGeometricGraph
>>> from repro.routing.greedy import GreedyRouter
>>> graph = RandomGeometricGraph.sample_connected(
...     24, np.random.default_rng(3), radius_constant=3.0
... )
>>> cached, plain = CachedGreedyRouter(graph), GreedyRouter(graph)
>>> cached.route_to_node(0, 5).path == plain.route_to_node(0, 5).path
True
>>> (cached.misses, cached.hits)  # first route built column for target 5
(1, 0)
>>> _ = cached.route_to_node(7, 5)
>>> (cached.misses, cached.hits)
(1, 1)
"""

from __future__ import annotations

import numpy as np

from repro.graphs.rgg import RandomGeometricGraph
from repro.routing.cost import TransmissionCounter
from repro.routing.greedy import GreedyRouter, RouteResult

__all__ = ["CachedGreedyRouter"]


class CachedGreedyRouter:
    """Exact drop-in for :class:`GreedyRouter`'s node-target routing.

    Parameters
    ----------
    router:
        The router to memoize, or a graph (a fresh router is built).

    Attributes
    ----------
    hits / misses:
        Route-level cache statistics: a miss builds the target's next-hop
        column, a hit routes through an existing column.
    """

    def __init__(self, router: GreedyRouter | RandomGeometricGraph):
        if isinstance(router, RandomGeometricGraph):
            router = GreedyRouter(router)
        self.router = router
        self.graph = router.graph
        neighbors = self.graph.neighbors
        n = self.graph.n
        degrees = np.array([adj.size for adj in neighbors], dtype=np.int64)
        flat = (
            np.concatenate(neighbors)
            if degrees.sum()
            else np.empty(0, dtype=np.int64)
        )
        offsets = np.zeros(n, dtype=np.int64)
        np.cumsum(degrees[:-1], out=offsets[1:])
        self._degrees = degrees
        self._flat = flat
        #: reduceat demands in-range start indices; empty trailing
        #: segments are clipped here and masked out by ``_degrees > 0``.
        self._safe_offsets = np.minimum(offsets, max(flat.size - 1, 0))
        self._flat_index = np.arange(flat.size, dtype=np.int64)
        self._nodes = np.arange(n, dtype=np.int64)
        #: target node -> next-hop column (a plain list: per-hop indexing
        #: is the innermost loop); ``column[u] == u`` marks "the route
        #: towards this target ends at u" (arrived, or a void).
        self._columns: dict[int, list[int]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        """Number of cached next-hop columns (distinct targets seen)."""
        return len(self._columns)

    @property
    def hit_rate(self) -> float:
        """Fraction of routes served from an existing column."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def route_to_node(
        self,
        source: int,
        target_node: int,
        counter: TransmissionCounter | None = None,
        category: str = "route",
    ) -> RouteResult:
        """Route ``source`` → ``target_node``; same contract as the router.

        Fails (``delivered=False``) at a routing void exactly where the
        uncached greedy walk would, because the column replays the
        identical deterministic hop decisions.
        """
        column = self._columns.get(target_node)
        if column is None:
            self.misses += 1
            column = self._build_column(target_node).tolist()
            self._columns[target_node] = column
        else:
            self.hits += 1
        path = [source]
        current = source
        while True:
            nxt = column[current]
            if nxt == current:
                break
            path.append(nxt)
            current = nxt
        if counter is not None and len(path) > 1:
            counter.charge(len(path) - 1, category)
        return RouteResult(path=tuple(path), delivered=current == target_node)

    def round_trip(
        self,
        source: int,
        target_node: int,
        counter: TransmissionCounter | None = None,
        category: str = "route",
    ) -> tuple[RouteResult, RouteResult]:
        """Cached mirror of :meth:`GreedyRouter.round_trip`."""
        forward = self.route_to_node(source, target_node, counter, category)
        backward = self.route_to_node(
            forward.destination, source, counter, category
        )
        return forward, backward

    def _build_column(self, target_node: int) -> np.ndarray:
        """Every node's greedy next hop towards ``target_node``, vectorized.

        Replicates the scalar stopping rule bit for bit: the squared
        distances are the same elementwise IEEE operations the scalar
        path computes, segment minima break ties on the first minimal
        neighbour (as ``np.argmin`` does), and a node whose best
        neighbour is not *strictly* closer maps to itself.
        """
        positions = self.router._positions
        diff = positions - positions[target_node]
        dist_sq = diff[:, 0] ** 2 + diff[:, 1] ** 2
        if self._flat.size == 0:
            return self._nodes.copy()
        neighbor_sq = dist_sq[self._flat]
        segment_min = np.minimum.reduceat(neighbor_sq, self._safe_offsets)
        # First index attaining the per-segment minimum == np.argmin.
        masked_index = np.where(
            neighbor_sq == np.repeat(segment_min, self._degrees),
            self._flat_index,
            self._flat.size,
        )
        first_index = np.minimum.reduceat(masked_index, self._safe_offsets)
        best_neighbor = self._flat[np.minimum(first_index, self._flat.size - 1)]
        progress = (self._degrees > 0) & (segment_min < dist_sq)
        return np.where(progress, best_neighbor, self._nodes)
