"""Memoized greedy routing: per-target next-hop columns over :class:`GreedyRouter`.

Greedy geographic forwarding is deterministic: the hop taken at node ``u``
towards target node ``t`` depends only on ``(u, t)`` and the fixed graph.
The first time a target ``t`` is routed to, :class:`CachedGreedyRouter`
builds the *entire* next-hop column for ``t`` — the greedy successor of
every node — in one vectorized segment-min pass over the flattened
adjacency (``np.minimum.reduceat``).  One column build costs about as
much as a single scalar route walk, and afterwards every route towards
``t``, from any source, is a chain of O(1) array lookups.

The cache is **exact**: the column applies the same elementwise IEEE
arithmetic and the same first-minimum tie-breaking as the scalar
:meth:`GreedyRouter._closest_neighbor` step, so
:class:`CachedGreedyRouter` produces bit-identical
:class:`~repro.routing.greedy.RouteResult` paths, delivery flags and
transmission charges to the uncached router (tested).  It exists so the
engine's batched tick path (`tick_block` in the routed protocols) can
charge routed transmission costs without re-walking greedy paths; the
legacy scalar loop keeps using the plain router.

Memory is one ``n``-vector of node indices per distinct target ever
routed to — at most O(n²) integers, and in practice bounded by the
targets a run actually draws.

>>> import numpy as np
>>> from repro.graphs.rgg import RandomGeometricGraph
>>> from repro.routing.greedy import GreedyRouter
>>> graph = RandomGeometricGraph.sample_connected(
...     24, np.random.default_rng(3), radius_constant=3.0
... )
>>> cached, plain = CachedGreedyRouter(graph), GreedyRouter(graph)
>>> cached.route_to_node(0, 5).path == plain.route_to_node(0, 5).path
True
>>> (cached.misses, cached.hits)  # first route built column for target 5
(1, 0)
>>> _ = cached.route_to_node(7, 5)
>>> (cached.misses, cached.hits)
(1, 1)
"""

from __future__ import annotations

import numpy as np

from repro.graphs.rgg import RandomGeometricGraph
from repro.observability import events as _events
from repro.observability import metrics as _metrics
from repro.routing.cost import TransmissionCounter
from repro.routing.greedy import GreedyRouter, RouteResult

__all__ = ["CachedGreedyRouter"]


class CachedGreedyRouter:
    """Exact drop-in for :class:`GreedyRouter`'s node-target routing.

    Parameters
    ----------
    router:
        The router to memoize, or a graph (a fresh router is built).

    Attributes
    ----------
    hits / misses:
        Route-level cache statistics: a miss builds the target's next-hop
        column, a hit routes through an existing column.
    """

    #: Above this many row-repairs (changed rows × cached columns) an
    #: :meth:`invalidate` call drops the columns instead of patching
    #: them: one vectorized column rebuild costs about one route walk,
    #: which beats a wide scalar repair sweep.
    REPAIR_BUDGET = 20_000

    def __init__(self, router: GreedyRouter | RandomGeometricGraph):
        if isinstance(router, RandomGeometricGraph):
            router = GreedyRouter(router)
        self.router = router
        self.graph = router.graph
        self._nodes = np.arange(self.graph.n, dtype=np.int64)
        #: target node -> next-hop column (a plain list: per-hop indexing
        #: is the innermost loop); ``column[u] == u`` marks "the route
        #: towards this target ends at u" (arrived, or a void).
        self._columns: dict[int, list[int]] = {}
        #: target node -> (hops, destination) vectors derived from the
        #: column by :meth:`route_stats`; rebuilt lazily after any
        #: :meth:`invalidate` (the columns they summarise may change).
        self._stats: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        #: Number of :meth:`invalidate` calls served (observability for
        #: the dynamics layer, which invalidates per epoch transition).
        self.invalidations = 0
        #: Row-repairs applied in place / columns dropped wholesale by
        #: :meth:`invalidate` — distinguishes cheap targeted patching
        #: from cache-flushing churn in the telemetry.
        self.repairs = 0
        self.drops = 0
        self._refresh_adjacency()
        # Metrics are pull-based here: the registry reads the counters
        # above at scrape time (weakly referenced), so the per-route hot
        # path pays nothing — see observability.metrics.cache_collector.
        registry = _metrics.active()
        if registry is not None:
            _metrics.cache_collector(registry, self)

    def _refresh_adjacency(self) -> None:
        """Snapshot ``graph.neighbors`` into the flattened reduceat layout."""
        neighbors = self.graph.neighbors
        n = self.graph.n
        degrees = np.array([adj.size for adj in neighbors], dtype=np.int64)
        flat = (
            np.concatenate(neighbors)
            if degrees.sum()
            else np.empty(0, dtype=np.int64)
        )
        offsets = np.zeros(n, dtype=np.int64)
        np.cumsum(degrees[:-1], out=offsets[1:])
        self._degrees = degrees
        self._flat = flat
        #: Segment starts for ``reduceat`` over *sentinel-padded* value
        #: arrays (:meth:`_build_column` appends one pad element).  A
        #: zero-degree node's offset equals its successor's — clipping it
        #: into range (the old scheme) would also truncate the *previous*
        #: node's segment end whenever trailing nodes are isolated, which
        #: time-varying substrates produce routinely; padding keeps every
        #: offset valid without moving any segment boundary.
        self._offsets = offsets
        self._flat_index = np.arange(flat.size, dtype=np.int64)

    def __len__(self) -> int:
        """Number of cached next-hop columns (distinct targets seen)."""
        return len(self._columns)

    @property
    def hit_rate(self) -> float:
        """Fraction of routes served from an existing column."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def route_to_node(
        self,
        source: int,
        target_node: int,
        counter: TransmissionCounter | None = None,
        category: str = "route",
    ) -> RouteResult:
        """Route ``source`` → ``target_node``; same contract as the router.

        Fails (``delivered=False``) at a routing void exactly where the
        uncached greedy walk would, because the column replays the
        identical deterministic hop decisions.
        """
        column = self._columns.get(target_node)
        if column is None:
            self.misses += 1
            column = self._build_column(target_node).tolist()
            self._columns[target_node] = column
        else:
            self.hits += 1
        path = [source]
        current = source
        while True:
            nxt = column[current]
            if nxt == current:
                break
            path.append(nxt)
            current = nxt
        if counter is not None and len(path) > 1:
            counter.charge(len(path) - 1, category)
            # Same emit-at-the-charge-site rule as GreedyRouter: callers
            # holding counter=None are accounted for at their own layer.
            recorder = _events.active()
            if recorder is not None:
                recorder.emit(
                    {"e": "route", "hops": len(path) - 1, "cat": category}
                )
        return RouteResult(path=tuple(path), delivered=current == target_node)

    def round_trip(
        self,
        source: int,
        target_node: int,
        counter: TransmissionCounter | None = None,
        category: str = "route",
    ) -> tuple[RouteResult, RouteResult]:
        """Cached mirror of :meth:`GreedyRouter.round_trip`."""
        forward = self.route_to_node(source, target_node, counter, category)
        backward = self.route_to_node(
            forward.destination, source, counter, category
        )
        return forward, backward

    def route_stats(
        self, target_node: int, *, account: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-source ``(hops, destination)`` vectors towards ``target_node``.

        ``hops[u]`` is exactly ``len(path) - 1`` of
        :meth:`route_to_node`'s walk from ``u`` and ``destination[u]`` its
        fixed point (``destination[u] == target_node`` means delivered),
        derived from the next-hop column by pointer doubling — O(n log
        diameter) for all ``n`` sources at once.  This is the lookup layer
        the trial-tensorized kernels (:mod:`repro.engine.tensor`) resolve
        whole owner windows against instead of walking paths one hop at a
        time.

        Accounting mirrors :meth:`route_to_node`'s ledger: the call is a
        miss when the target's column had to be built, a hit otherwise
        (deriving stats from an already-cached column answers from cached
        routing work).  Kernels that resolve many lookups against one
        stats row account the rest through :meth:`charge_lookups`.  With
        ``account=False`` the ledger is left untouched — the
        shared-substrate tensor path computes stats once on one trial's
        router and mirrors each trial's hit/miss totals explicitly via
        :meth:`charge_misses` / :meth:`charge_lookups`.

        The returned arrays are cached internals — callers must not
        mutate them.
        """
        stats = self._stats.get(target_node)
        if stats is not None:
            if account:
                self.hits += 1
            return stats
        column = self._columns.get(target_node)
        if column is None:
            if account:
                self.misses += 1
            array = self._build_column(target_node)
            self._columns[target_node] = array.tolist()
        else:
            if account:
                self.hits += 1
            array = np.asarray(column, dtype=np.int64)
        stats = self._column_stats(array)
        self._stats[target_node] = stats
        return stats

    def cached_column(self, target_node: int) -> list[int]:
        """The raw next-hop column for ``target_node``, with no accounting.

        Kernel-layer accessor: the path-averaging tensor kernel walks the
        column to recover the exact node sequence (already accounted for
        through :meth:`route_stats` / :meth:`charge_lookups`), so this
        lookup must not count a second hit for the same route.
        """
        column = self._columns.get(target_node)
        if column is None:
            column = self._build_column(target_node).tolist()
            self._columns[target_node] = column
        return column

    def charge_lookups(self, count: int) -> None:
        """Account ``count`` route-level lookups served from cached columns.

        The tensor kernels call :meth:`route_stats` once per *distinct*
        target of a window and resolve every remaining route of the
        window against the returned vectors; charging those resolutions
        here keeps the hit/miss ledger equal to what the per-cell path
        (one :meth:`route_to_node` call per route) would have recorded.
        """
        if count < 0:
            raise ValueError(f"lookup count must be >= 0, got {count}")
        self.hits += count

    def charge_misses(self, count: int) -> None:
        """Account ``count`` first-time route lookups as cache misses.

        Counterpart of :meth:`charge_lookups` for the shared-substrate
        tensor path: column builds happen once on a designated router
        (via ``route_stats(..., account=False)``), and each trial charges
        the misses its own per-cell run would have recorded — one per
        target it routes towards for the first time.
        """
        if count < 0:
            raise ValueError(f"miss count must be >= 0, got {count}")
        self.misses += count

    @staticmethod
    def _column_stats(
        column: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fold a next-hop column into ``(hops, destination)`` vectors.

        Pointer doubling: ``jump[u]`` is the node reached after at most
        ``2^k`` real hops (fixed points absorb) and ``hops[u]`` the real
        hops taken, so composing ``jump`` with itself doubles the horizon
        until every walk has landed on its fixed point.  Greedy columns
        are acyclic (every hop moves strictly closer to the target), so
        this terminates in O(log diameter) rounds.
        """
        nodes = np.arange(column.size, dtype=np.int64)
        jump = column.astype(np.int64, copy=True)
        hops = (jump != nodes).astype(np.int64)
        while True:
            landed = jump[jump]
            if np.array_equal(landed, jump):
                return hops, jump
            hops = hops + hops[jump]
            jump = landed

    def invalidate(self, nodes: "list[int] | None" = None) -> int:
        """React to an adjacency change without rebuilding the whole cache.

        Parameters
        ----------
        nodes:
            The nodes whose adjacency arrays changed (a time-varying
            substrate masking crashed nodes or failed links), or ``None``
            for "anything may have changed, positions included" — e.g.
            after a mobility rebuild.

        With ``nodes=None`` every cached column is dropped.  With an
        explicit node list the flattened adjacency snapshot is refreshed
        and each cached column is *repaired in place* at exactly those
        rows: a column entry at an unchanged node is still the correct
        greedy next hop (the decision depends only on that node's own
        adjacency and the fixed positions), so only the changed rows need
        recomputing — O(|nodes| · degree) per cached target instead of a
        full column rebuild.  Repaired columns stay bit-identical to
        freshly built ones (tested).

        Repair is a scalar loop, so when the change is *wide* (many rows
        × many cached columns — e.g. heavy churn epochs) dropping the
        columns and letting the vectorized builder repopulate them on
        demand is cheaper; past :data:`REPAIR_BUDGET` row-repairs the
        call does exactly that.  Either way the observable routing
        behaviour is identical — dropping is always safe.

        Returns the number of columns dropped or repaired.
        """
        self.invalidations += 1
        self._refresh_adjacency()
        # Stats vectors summarise columns that may now be repaired or
        # dropped below; they are cheap to re-derive, so always discard.
        self._stats.clear()
        if nodes is not None:
            rows = [int(node) for node in nodes]
            if not rows or not self._columns:
                return 0
            if len(rows) * len(self._columns) > self.REPAIR_BUDGET:
                nodes = None
        if nodes is None:
            dropped = len(self._columns)
            self._columns.clear()
            self.drops += dropped
            return dropped
        positions = self.router._positions
        for target_node, column in self._columns.items():
            target = positions[target_node]
            for u in rows:
                column[u] = self._next_hop(u, target)
        self.repairs += len(rows) * len(self._columns)
        return len(self._columns)

    def _next_hop(self, u: int, target: np.ndarray) -> int:
        """The scalar greedy next-hop rule, matching the column semantics.

        Delegates to the router's own step primitives
        (``GreedyRouter._closest_neighbor`` / ``_squared_distance``) so
        the scalar greedy step has exactly one implementation — the same
        elementwise IEEE arithmetic and first-minimum tie-breaking that
        :meth:`_build_column` vectorizes.  A node with no strictly
        closer neighbour (or no neighbours at all) maps to itself.
        """
        step = self.router._closest_neighbor(u, target)
        if step is None:
            return u
        best, best_sq = step
        if best_sq < self.router._squared_distance(u, target):
            return best
        return u

    def _build_column(self, target_node: int) -> np.ndarray:
        """Every node's greedy next hop towards ``target_node``, vectorized.

        Replicates the scalar stopping rule bit for bit: the squared
        distances are the same elementwise IEEE operations the scalar
        path computes, segment minima break ties on the first minimal
        neighbour (as ``np.argmin`` does), and a node whose best
        neighbour is not *strictly* closer maps to itself.
        """
        positions = self.router._positions
        diff = positions - positions[target_node]
        dist_sq = diff[:, 0] ** 2 + diff[:, 1] ** 2
        if self._flat.size == 0:
            return self._nodes.copy()
        # One sentinel pad keeps every offset (including those of empty
        # trailing segments, which equal flat.size) a valid reduceat
        # index; padded slots only ever land in zero-degree segments,
        # which ``_degrees > 0`` masks out below.
        neighbor_sq = np.append(dist_sq[self._flat], np.inf)
        segment_min = np.minimum.reduceat(neighbor_sq, self._offsets)
        # First index attaining the per-segment minimum == np.argmin.
        masked_index = np.append(
            np.where(
                neighbor_sq[:-1] == np.repeat(segment_min, self._degrees),
                self._flat_index,
                self._flat.size,
            ),
            self._flat.size,
        )
        first_index = np.minimum.reduceat(masked_index, self._offsets)
        best_neighbor = self._flat[np.minimum(first_index, self._flat.size - 1)]
        progress = (self._degrees > 0) & (segment_min < dist_sq)
        return np.where(progress, best_neighbor, self._nodes)
