"""Greedy geographic routing.

Both geographic gossip (Dimakis et al. 2006) and this paper's `Far`
exchanges and hierarchy activations move packets by greedy geographic
routing: the current holder forwards the packet to its neighbour closest to
the target location, until no neighbour is closer than the holder itself.

On ``G(n, r)`` with ``r = Θ(sqrt(log n / n))`` greedy forwarding succeeds
w.h.p. and a route across distance ``d`` takes ``O(d / r) = O(sqrt(n/log n))``
hops — the `O(√n)` hop bound the paper charges per long-range exchange
(Observation 1).  Experiment E4 measures both facts.

Each hop is one transmission.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.rgg import RandomGeometricGraph
from repro.observability import events as _events
from repro.routing.cost import TransmissionCounter

__all__ = ["RouteResult", "GreedyRouter"]


@dataclass(frozen=True)
class RouteResult:
    """Outcome of one greedy route.

    Attributes
    ----------
    path:
        Node indices visited, source first.  The last entry is where the
        packet ended up (the destination on success, the void node on
        failure).
    delivered:
        For position targets: always ``True`` (the packet stops at a node
        locally nearest the target, which *is* the delivery rule).  For node
        targets: ``True`` iff the packet reached that exact node.
    """

    path: tuple[int, ...]
    delivered: bool

    @property
    def hops(self) -> int:
        """Number of transmissions used (edges traversed)."""
        return len(self.path) - 1

    @property
    def destination(self) -> int:
        return self.path[-1]


class GreedyRouter:
    """Greedy geographic forwarding over a fixed geometric random graph."""

    def __init__(self, graph: RandomGeometricGraph):
        self.graph = graph
        self._positions = graph.positions

    def route_to_position(
        self,
        source: int,
        target: np.ndarray,
        counter: TransmissionCounter | None = None,
        category: str = "route",
    ) -> RouteResult:
        """Route from ``source`` greedily towards the location ``target``.

        The packet stops at the first node none of whose neighbours is
        strictly closer to ``target`` — that node is the delivery point
        ("the node nearest to a position chosen randomly" in the paper's
        description of [5], realised greedily).
        """
        path = [source]
        current = source
        current_sq = self._squared_distance(current, target)
        while True:
            step = self._closest_neighbor(current, target)
            if step is None:
                break
            next_node, next_sq = step
            if next_sq >= current_sq:
                break
            path.append(next_node)
            current, current_sq = next_node, next_sq
        if counter is not None and len(path) > 1:
            counter.charge(len(path) - 1, category)
            # Emitted only where the charge happens: callers that pass
            # counter=None (cache probes, the lossy wrapper's inner
            # routes) are accounted for at their own layer.
            recorder = _events.active()
            if recorder is not None:
                recorder.emit(
                    {"e": "route", "hops": len(path) - 1, "cat": category}
                )
        return RouteResult(path=tuple(path), delivered=True)

    def route_to_node(
        self,
        source: int,
        target_node: int,
        counter: TransmissionCounter | None = None,
        category: str = "route",
    ) -> RouteResult:
        """Route from ``source`` to a specific ``target_node``.

        Fails (``delivered=False``) if greedy forwarding reaches a local
        minimum other than the target — a routing void.  At the paper's
        connectivity radius voids essentially never occur (E4 quantifies
        the failure rate).
        """
        target = self._positions[target_node]
        result = self.route_to_position(source, target, counter, category)
        delivered = result.destination == target_node
        return RouteResult(path=result.path, delivered=delivered)

    def round_trip(
        self,
        source: int,
        target_node: int,
        counter: TransmissionCounter | None = None,
        category: str = "route",
    ) -> tuple[RouteResult, RouteResult]:
        """Route to ``target_node`` and back (the `Far` exchange pattern).

        The reply retraces a fresh greedy route from the destination to the
        source node (greedy towards the source's coordinates, as in [5]).
        """
        forward = self.route_to_node(source, target_node, counter, category)
        backward = self.route_to_node(
            forward.destination, source, counter, category
        )
        return forward, backward

    def expected_hops(self, distance: float) -> float:
        """Analytic hop estimate for a route across ``distance``.

        Greedy progress per hop is close to the radius ``r`` for dense
        graphs; ``distance / r`` is the standard estimate used for
        extrapolation in :mod:`repro.analysis.theory`.
        """
        return distance / self.graph.radius

    # -- internals ---------------------------------------------------------

    def _squared_distance(self, node: int, target: np.ndarray) -> float:
        p = self._positions[node]
        dx, dy = p[0] - target[0], p[1] - target[1]
        return float(dx * dx + dy * dy)

    def _closest_neighbor(
        self, node: int, target: np.ndarray
    ) -> tuple[int, float] | None:
        adj = self.graph.neighbors[node]
        if adj.size == 0:
            return None
        pts = self._positions[adj]
        sq = (pts[:, 0] - target[0]) ** 2 + (pts[:, 1] - target[1]) ** 2
        best = int(np.argmin(sq))
        return int(adj[best]), float(sq[best])
