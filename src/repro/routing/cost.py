"""Transmission accounting.

The paper's cost metric is the number of radio transmissions (Section 2.1:
"The cost of the algorithm is the expected number of transmissions made
until t").  Every primitive in the library — a one-hop message, each hop of
a greedy route, each edge of a flood — charges exactly one transmission per
radio send to a single shared counter, so algorithm costs are comparable
and auditable by category.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["TransmissionCounter"]


@dataclass
class TransmissionCounter:
    """Counts transmissions, optionally split by category.

    Categories are free-form strings such as ``"near"``, ``"route"``,
    ``"flood"``, ``"activation"``; the total is what the paper's theorems
    bound, the split is what the experiment tables report.
    """

    total: int = 0
    by_category: Counter = field(default_factory=Counter)

    def charge(self, amount: int = 1, category: str = "message") -> None:
        """Record ``amount`` transmissions under ``category``."""
        if amount < 0:
            raise ValueError(f"cannot charge a negative amount ({amount})")
        self.total += amount
        self.by_category[category] += amount

    def merge(self, other: "TransmissionCounter") -> None:
        """Fold another counter's charges into this one."""
        self.total += other.total
        self.by_category.update(other.by_category)

    def snapshot(self) -> dict[str, int]:
        """Immutable view of the per-category counts (plus ``"total"``)."""
        view = dict(self.by_category)
        view["total"] = self.total
        return view

    def reset(self) -> None:
        self.total = 0
        self.by_category.clear()
