"""Rejection sampling for near-uniform node targeting.

Geographic gossip picks a uniformly random *location* and routes to the
nearest node.  The induced node distribution is proportional to Voronoi
cell areas, not uniform; Dimakis et al. fix this with rejection sampling
("Rejection sampling is used to make the distribution roughly uniform on
nodes", paper Section 1.1).

:class:`RejectionSampler` implements the area-based scheme: a proposed node
``v`` (hit with probability ``area(v)``) is accepted with probability
``min(1, a_ref / area(v))``, giving acceptance mass ``min(area(v), a_ref)``
— uniform across all nodes whose cell area is at least ``a_ref``.  The
reference area ``a_ref`` trades uniformity (E13 measures total-variation
distance) against overhead (expected number of proposals, each costing a
routed round trip in the real protocol).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["voronoi_cell_areas", "RejectionSampler"]


def voronoi_cell_areas(positions: np.ndarray, resolution: int = 256) -> np.ndarray:
    """Estimate each node's Voronoi cell area within the unit square.

    A ``resolution × resolution`` grid of sample points is assigned to its
    nearest node; the returned fractions sum to 1.  Accuracy is O(1/resolution)
    per linear dimension, ample for sampling and for E13's statistics.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {positions.shape}")
    if resolution <= 0:
        raise ValueError(f"resolution must be positive, got {resolution}")
    axis = (np.arange(resolution) + 0.5) / resolution
    gx, gy = np.meshgrid(axis, axis)
    samples = np.column_stack([gx.ravel(), gy.ravel()])
    _, owner = cKDTree(positions).query(samples, k=1)
    counts = np.bincount(owner, minlength=len(positions))
    return counts / counts.sum()


class RejectionSampler:
    """Draw target nodes nearly uniformly via propose-and-reject.

    Parameters
    ----------
    positions:
        Node coordinates, shape ``(n, 2)``.
    reference_quantile:
        ``a_ref`` is this quantile of the cell-area distribution.  Nodes
        with areas ≥ ``a_ref`` are all hit with equal probability; nodes
        with smaller cells keep their (already small) proposal probability.
        Lower quantiles mean better uniformity but more rejections.
    resolution:
        Grid resolution for the area estimate.
    """

    def __init__(
        self,
        positions: np.ndarray,
        reference_quantile: float = 0.5,
        resolution: int = 256,
    ):
        if not 0.0 < reference_quantile <= 1.0:
            raise ValueError(
                f"reference quantile must be in (0, 1], got {reference_quantile}"
            )
        self.positions = np.asarray(positions, dtype=np.float64)
        self.areas = voronoi_cell_areas(self.positions, resolution)
        self.reference_area = float(np.quantile(self.areas, reference_quantile))
        if self.reference_area <= 0:
            # Degenerate geometry (duplicate points): fall back to the mean.
            self.reference_area = float(self.areas.mean())
        self._tree = cKDTree(self.positions)
        self._accept = np.minimum(1.0, self.reference_area / np.maximum(self.areas, 1e-300))
        # Nodes with zero estimated area can never be proposed anyway.
        self._accept[self.areas == 0.0] = 1.0

    @property
    def n(self) -> int:
        return len(self.positions)

    def propose(self, rng: np.random.Generator) -> int:
        """One proposal: nearest node to a uniform random location."""
        _, node = self._tree.query(rng.random(2), k=1)
        return int(node)

    def sample(self, rng: np.random.Generator) -> tuple[int, int]:
        """Draw an accepted target node.

        Returns
        -------
        (node, proposals):
            The accepted node and the number of proposals consumed
            (each proposal costs a routed probe in the deployed protocol;
            gossip simulations charge this overhead explicitly).
        """
        proposals = 0
        while True:
            proposals += 1
            node = self.propose(rng)
            if rng.random() < self._accept[node]:
                return node, proposals

    def target_distribution(self) -> np.ndarray:
        """Exact post-rejection node distribution (up to area-estimate error)."""
        mass = self.areas * self._accept
        return mass / mass.sum()

    def expected_proposals(self) -> float:
        """Expected number of proposals per accepted sample."""
        return float(1.0 / (self.areas * self._accept).sum())

    def total_variation_from_uniform(self) -> float:
        """TV distance between :meth:`target_distribution` and uniform."""
        target = self.target_distribution()
        uniform = np.full(self.n, 1.0 / self.n)
        return float(0.5 * np.abs(target - uniform).sum())
