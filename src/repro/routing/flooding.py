"""Flooding within a node subset.

`Activate.square` / `Deactivate.square` at Level 1 "send packets to each
node s' in □(s) ... by flooding" (Section 4.2).  We model a flood as a BFS
over the communication graph restricted to the members of the square: every
member retransmits the packet once, so a flood over ``m`` reachable members
costs ``m`` transmissions (the initiator's send plus one forward per newly
covered node), i.e. ``O(m)`` — the accounting used in Section 3 ("each
process of initiating or ending A on a square takes O(√n) transmissions",
a square holding ~√n sensors).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

from repro.routing.cost import TransmissionCounter

__all__ = ["flood"]


def flood(
    neighbors: Sequence[np.ndarray],
    source: int,
    members: Iterable[int],
    counter: TransmissionCounter | None = None,
    category: str = "flood",
) -> list[int]:
    """Flood a packet from ``source`` to every reachable node in ``members``.

    Parameters
    ----------
    neighbors:
        Per-node adjacency arrays of the full communication graph.
    source:
        The initiating node (must belong to ``members``).
    members:
        The node subset being flooded (the square's sensors); edges leaving
        the subset are not used, matching the protocol's square-local
        broadcast.
    counter:
        Transmission counter to charge (one transmission per node that
        sends, i.e. the number of reached nodes including the source).

    Returns
    -------
    list[int]
        The reached members in BFS order (``source`` first).  With a
        connected intra-square graph this is all of ``members``.
    """
    member_set = set(int(m) for m in members)
    if source not in member_set:
        raise ValueError(f"flood source {source} is not a member of the square")
    reached = [source]
    seen = {source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in neighbors[u]:
            v = int(v)
            if v in member_set and v not in seen:
                seen.add(v)
                reached.append(v)
                queue.append(v)
    if counter is not None:
        # Every reached node transmits once; leaves' retransmissions are
        # counted too (nodes cannot know they have no uncovered neighbour).
        counter.charge(len(reached), category)
    return reached
