"""Run telemetry: lightweight counters and timers for sweep cells.

Complements the event stream with always-cheap aggregates: wall-clock
throughput, route-cache effectiveness, and which engine fallbacks a cell
hit.  The sweep executor collects one flat ``{name: float}`` mapping per
cell (:func:`collect_telemetry`) and stores it on the
:class:`~repro.engine.executor.CellRecord` — excluded from record
equality, omitted from serialisation when absent, so deterministic
record comparisons and old stores are both unaffected.

Everything here duck-types its inputs (stdlib only, no ``repro``
imports): this module is a leaf the engine layers can import freely.

>>> collect_telemetry(object(), wall_clock=2.0, ticks=1000)
{'ticks_per_sec': 500.0, 'scalar_fallback': 0.0, 'multifield_fallback': 0.0}
"""

from __future__ import annotations

__all__ = [
    "cache_stats",
    "collect_telemetry",
    "metric_deltas",
    "service_telemetry",
]


def cache_stats(algorithm) -> "dict[str, float] | None":
    """Route-cache counters of ``algorithm``'s memoized router, if any.

    Unwraps one :class:`~repro.dynamics.overlay.DynamicGossip` layer
    (``algorithm.inner``) and one
    :class:`~repro.dynamics.overlay.LossyRouter` layer
    (``route_cache.inner``) to reach the underlying
    :class:`~repro.routing.cache.CachedGreedyRouter`; protocols without
    a route cache (randomized, the affine comparators) return ``None``.
    """
    inner = getattr(algorithm, "inner", algorithm)
    cache = getattr(inner, "route_cache", None)
    if cache is None:
        return None
    cache = getattr(cache, "inner", cache)
    if getattr(cache, "hits", None) is None:
        return None
    return {
        "cache_hits": float(cache.hits),
        "cache_misses": float(cache.misses),
        "cache_invalidations": float(cache.invalidations),
        "cache_repairs": float(getattr(cache, "repairs", 0)),
        "cache_drops": float(getattr(cache, "drops", 0)),
    }


def collect_telemetry(
    algorithm,
    *,
    wall_clock: float,
    ticks: int,
    scalar_fallback: bool = False,
    multifield_fallback: bool = False,
    multifield_runs: "int | None" = None,
    trace_events: "int | None" = None,
    trial_batch: bool = False,
    metrics: "dict[str, float] | None" = None,
) -> dict[str, float]:
    """One cell's flat telemetry mapping.

    Always present: ``ticks_per_sec`` and the fallback indicators
    (``1.0`` when the cell hit the engine's scalar-tick or per-column
    multi-field fallback — the run is correct but missed a fast path).
    Added when applicable: the route-cache counters of
    :func:`cache_stats`, ``trace_events`` (events captured when the cell
    ran traced), ``trial_batch`` (``1.0`` when the cell executed inside
    a trial-tensorized slice), and ``multifield_fallback_runs`` — the
    number of nested runs a per-column fallback cell executed on *one*
    protocol instance, which is the factor by which its cumulative
    counters (the route-cache hits/misses above) are inflated relative
    to a single run.  ``metrics`` (from :func:`metric_deltas`) merges
    registry counter movement attributed to this cell, each entry
    prefixed ``metric_``.
    """
    telemetry = {
        "ticks_per_sec": (
            float(ticks) / wall_clock if wall_clock > 0 else 0.0
        ),
        "scalar_fallback": 1.0 if scalar_fallback else 0.0,
        "multifield_fallback": 1.0 if multifield_fallback else 0.0,
    }
    if multifield_runs is not None:
        telemetry["multifield_fallback_runs"] = float(multifield_runs)
    stats = cache_stats(algorithm)
    if stats is not None:
        telemetry.update(stats)
    if trace_events is not None:
        telemetry["trace_events"] = float(trace_events)
    if trial_batch:
        telemetry["trial_batch"] = 1.0
    if metrics:
        telemetry.update(metrics)
    return telemetry


def metric_deltas(
    after: "dict[str, float]", before: "dict[str, float]"
) -> dict[str, float]:
    """Counter movement between two registry snapshots, per series.

    The sweep executor snapshots
    :meth:`~repro.observability.metrics.MetricsRegistry.counter_totals`
    around a cell and stores the nonzero deltas on the cell's record —
    which is how the distributed coordinator (a separate process from
    its workers) can still aggregate engine-level counters fleet-wide:
    they ride home inside each landed
    :class:`~repro.engine.executor.CellRecord`.

    >>> metric_deltas(
    ...     {"repro_x_total": 5.0, "repro_y_total": 2.0},
    ...     {"repro_x_total": 3.0})
    {'metric_repro_x_total': 2.0, 'metric_repro_y_total': 2.0}
    """
    deltas: dict[str, float] = {}
    for series, value in after.items():
        delta = value - before.get(series, 0.0)
        if delta:
            deltas[f"metric_{series}"] = delta
    return deltas


def service_telemetry(stats, done_log, service=None) -> dict:
    """A distributed-sweep snapshot: queue depth plus per-worker throughput.

    ``stats`` duck-types :class:`~repro.engine.queue.QueueStats`
    (``total``/``pending``/``leased``/``done``/``reclamations``; when it
    also carries ``pending_by_priority`` — format-2 queues do — the
    per-priority split lands under ``queue.pending_by_priority`` as
    ``{"p0": …, "p1": …, "p2": …}``); ``done_log`` is the queue's list
    of completion markers, each a mapping with ``owner``,
    ``claimed_at``, and ``completed_at``.  Busy time is the
    claim-to-completion span, so a worker's ``cells_per_sec`` reflects
    execution only — idle polling between leases never counts.
    ``service``, when given, is an opaque coordinator-state mapping
    (daemon flag, drain state, respawns…) copied under a ``"service"``
    key.

    >>> class S:
    ...     total, pending, leased, done, reclamations = 4, 1, 1, 2, 1
    >>> log = [
    ...     {"owner": "w0", "claimed_at": 0.0, "completed_at": 2.0},
    ...     {"owner": "w0", "claimed_at": 3.0, "completed_at": 5.0},
    ... ]
    >>> service_telemetry(S(), log)["workers"]["w0"]
    {'cells': 2, 'busy_seconds': 4.0, 'cells_per_sec': 0.5}
    """
    workers: dict = {}
    for entry in done_log:
        owner = str(entry["owner"])
        busy = float(entry["completed_at"]) - float(entry["claimed_at"])
        slot = workers.setdefault(owner, {"cells": 0, "busy_seconds": 0.0})
        slot["cells"] += 1
        slot["busy_seconds"] += max(busy, 0.0)
    for slot in workers.values():
        slot["cells_per_sec"] = (
            slot["cells"] / slot["busy_seconds"]
            if slot["busy_seconds"] > 0
            else 0.0
        )
    queue = {
        "total": int(stats.total),
        "pending": int(stats.pending),
        "leased": int(stats.leased),
        "done": int(stats.done),
        "reclamations": int(stats.reclamations),
    }
    by_priority = getattr(stats, "pending_by_priority", None)
    if by_priority is not None:
        queue["pending_by_priority"] = {
            f"p{index}": int(count)
            for index, count in enumerate(by_priority)
        }
    payload = {"queue": queue, "workers": workers}
    if service is not None:
        payload["service"] = dict(service)
    return payload
