"""Trace replay: re-derive a run's numbers from its event stream alone.

The replay engine reconstructs a run from nothing but the JSONL trace:
starting from the ``start`` event's initial state it re-applies every
update event with the *exact* NumPy kernels the protocols use (convex
pair average, contiguous route mean,
:func:`~repro.gossip.affine.affine_pair_update`), re-accumulates every
transmission charge the events imply, and re-checks every recorded
convergence check **bitwise**.  Because emission happens at the charge
sites and the kernels are shared, replay is an independent end-to-end
cross-check of the engine: if any layer charged, updated, or stopped
differently than its events claim, replay raises :class:`ReplayError`.

Invariants asserted while replaying:

* every ``check`` event's error equals ``normalized_error`` of the
  reconstructed state, bitwise, at the recorded transmission count;
* the ``end`` event's final values, error, converged flag, and
  per-category transmission snapshot equal the reconstruction exactly;
* ``batch`` events (when present) account for every tick;
* conservation of mass — per-column sums of the reconstructed state
  drift from the initial sums only by float rounding.

:func:`validate_result` and :func:`validate_record` then compare a
:class:`ReplayResult` against the live
:class:`~repro.gossip.base.GossipRunResult` /
:class:`~repro.engine.executor.CellRecord`, including re-derived fault
metrics (aborts, wasted ticks, losses, churn counts, live-node error)
and per-column field errors.

>>> trace = [
...     {"e": "start", "v": 1, "algorithm": "randomized", "n": 2, "k": 1,
...      "epsilon": 0.5, "stride": 1, "initial": [1.0, -1.0]},
...     {"e": "pairs", "op": "avg", "cat": "near", "pairs": [[0, 1]]},
...     {"e": "check", "ticks": 1, "tx": 2, "error": 0.0},
...     {"e": "end", "ticks": 1, "tx": {"near": 2, "total": 2},
...      "error": 0.0, "converged": True, "values": [0.0, 0.0]},
... ]
>>> result = replay_events(trace)
>>> result.transmissions["total"], result.converged, result.checks
(2, True, 1)
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.dynamics.overlay import live_node_error
from repro.gossip.affine import affine_pair_update
from repro.metrics.error import normalized_error, result_column_errors
from repro.observability.events import TRACE_SCHEMA_VERSION, load_trace
from repro.routing.cost import TransmissionCounter

__all__ = [
    "ReplayError",
    "ReplayResult",
    "replay_events",
    "replay_file",
    "validate_record",
    "validate_result",
]

#: Relative tolerance for the conservation-of-mass invariant.  The
#: engine's updates conserve each column's sum exactly up to float
#: rounding (convex averages, cross-weighted affine exchanges,
#: antisymmetric noise, abort-before-update transactions); accumulated
#: rounding over a full run is orders of magnitude below this bound.
_MASS_TOLERANCE = 1e-9


class ReplayError(Exception):
    """A trace is malformed, or its replay contradicts what it recorded."""


@dataclass
class ReplayResult:
    """Everything re-derived from one trace.

    ``values``/``transmissions``/``ticks``/``converged``/``error`` mirror
    the fields of a live run; the fault tallies mirror
    :meth:`~repro.dynamics.overlay.DynamicGossip.fault_metrics`.
    """

    algorithm: str
    n: int
    fields: int
    epsilon: float
    check_stride: int
    values: np.ndarray
    initial_values: np.ndarray
    transmissions: dict[str, int]
    ticks: int
    converged: bool
    error: float
    checks: int
    batches: int
    aborted_routes: int
    wasted_ticks: int
    lost_transmissions: int
    crashes: int
    recoveries: int
    live: np.ndarray
    mass_drift: float

    @property
    def field_errors(self) -> "np.ndarray | None":
        """Per-column final errors (``None`` for scalar traces)."""
        return result_column_errors(self.values, self.initial_values)

    def fault_metrics(self) -> dict[str, float]:
        """The fault payload re-derived purely from trace events."""
        return {
            "aborted_routes": float(self.aborted_routes),
            "wasted_ticks": float(self.wasted_ticks),
            "lost_transmissions": float(self.lost_transmissions),
            "crashes": float(self.crashes),
            "recoveries": float(self.recoveries),
            "live_fraction": float(self.live.mean()),
            "live_node_error": live_node_error(
                self.values, self.initial_values, self.live
            ),
        }


def _apply_avg_pairs(values: np.ndarray, pairs) -> None:
    """The convex pair average, exactly as every endpoint protocol does.

    ``0.5 · (x + y)`` is the scalar protocols' literal expression; the
    multi-field fast path's in-place ``(x + y) · 0.5`` is bitwise equal
    (IEEE multiplication commutes), so one kernel replays both.
    """
    for i, j in pairs:
        average = 0.5 * (values[i] + values[j])
        values[i] = average
        values[j] = average


def _apply_route_mean(values: np.ndarray, nodes: np.ndarray) -> None:
    """Path averaging's route mean — the exact engine kernel.

    The 2-D branch transposes to a contiguous block so each column's
    mean reduces in the same order as the scalar 1-D mean (see
    ``PathAveragingGossip._average_route``).
    """
    block = values[nodes]
    if block.ndim == 1:
        values[nodes] = block.mean()
    else:
        values[nodes] = np.ascontiguousarray(block.T).mean(axis=1)


def replay_events(events: list[dict]) -> ReplayResult:
    """Reconstruct a run from its events; raise :class:`ReplayError`
    on any internal contradiction (see the module docstring's list)."""
    if not events or events[0].get("e") != "start":
        raise ReplayError("trace must begin with a start event")
    start = events[0]
    version = int(start.get("v", 0))
    if version != TRACE_SCHEMA_VERSION:
        raise ReplayError(
            f"trace schema v{version} is not the supported "
            f"v{TRACE_SCHEMA_VERSION}"
        )
    initial = np.asarray(start["initial"], dtype=np.float64)
    n = int(start["n"])
    if initial.shape[0] != n:
        raise ReplayError(
            f"start event claims n={n} but carries {initial.shape[0]} rows"
        )
    alphas = (
        np.asarray(start["alphas"], dtype=np.float64)
        if "alphas" in start
        else None
    )
    values = initial.copy()
    counter = TransmissionCounter()
    live = np.ones(n, dtype=bool)
    aborted = wasted = lost = crashes = recoveries = 0
    checks = batches = batch_ticks = 0
    end: "dict | None" = None

    for event in events[1:]:
        if end is not None:
            raise ReplayError("events found after the end event")
        kind = event.get("e")
        if kind == "pairs":
            pairs = event["pairs"]
            op = event.get("op")
            if op == "avg":
                _apply_avg_pairs(values, pairs)
                category = event.get("cat")
                if category is not None:
                    counter.charge(2 * len(pairs), category)
            elif op == "affine":
                if alphas is None:
                    raise ReplayError(
                        "affine pairs event but the start event carries "
                        "no alphas"
                    )
                nus = event.get("nus")
                for index, (i, j) in enumerate(pairs):
                    affine_pair_update(
                        values, i, j, float(alphas[i]), float(alphas[j])
                    )
                    if nus is not None:
                        nu = nus[index]
                        values[i] += nu
                        values[j] -= nu
                counter.charge(2 * len(pairs), "exchange")
            else:
                raise ReplayError(f"unknown pairs op {op!r}")
        elif kind == "route":
            counter.charge(int(event["hops"]), event["cat"])
        elif kind == "path":
            counter.charge(int(event["flash"]), "route")
            _apply_route_mean(
                values, np.asarray(event["nodes"], dtype=np.int64)
            )
        elif kind == "drop":
            counter.charge(int(event["tx"]), event["cat"])
            lost += 1
        elif kind == "abort":
            aborted += 1
        elif kind == "dead":
            wasted += int(event["ticks"])
        elif kind == "epoch":
            for node in event["crashed"]:
                live[node] = False
            for node in event["recovered"]:
                live[node] = True
            crashes += len(event["crashed"])
            recoveries += len(event["recovered"])
        elif kind == "batch":
            batches += 1
            batch_ticks += int(event["ticks"])
        elif kind == "check":
            error = normalized_error(values, initial)
            if error != event["error"]:
                raise ReplayError(
                    f"check at tick {event['ticks']}: replayed error "
                    f"{error!r} != recorded {event['error']!r}"
                )
            if counter.total != int(event["tx"]):
                raise ReplayError(
                    f"check at tick {event['ticks']}: replayed "
                    f"{counter.total} transmissions != recorded "
                    f"{event['tx']}"
                )
            checks += 1
        elif kind == "end":
            end = event
        elif kind == "start":
            raise ReplayError(
                "second start event — the trace interleaves two runs"
            )
        else:
            raise ReplayError(f"unknown event kind {kind!r}")

    if end is None:
        raise ReplayError("trace has no end event")

    final_error = normalized_error(values, initial)
    if final_error != end["error"]:
        raise ReplayError(
            f"final error: replayed {final_error!r} != recorded "
            f"{end['error']!r}"
        )
    snapshot = counter.snapshot()
    recorded_snapshot = {str(k): int(v) for k, v in end["tx"].items()}
    if snapshot != recorded_snapshot:
        raise ReplayError(
            f"transmissions: replayed {snapshot} != recorded "
            f"{recorded_snapshot}"
        )
    recorded_values = np.asarray(end["values"], dtype=np.float64)
    if recorded_values.shape != values.shape or not np.array_equal(
        recorded_values, values
    ):
        raise ReplayError(
            "final values: the reconstruction differs from the state the "
            "end event recorded"
        )
    ticks = int(end["ticks"])
    if batches and batch_ticks != ticks:
        raise ReplayError(
            f"batch events account for {batch_ticks} ticks but the run "
            f"recorded {ticks}"
        )
    converged = bool(end["converged"])
    epsilon = float(start["epsilon"])
    if converged != (final_error <= epsilon):
        raise ReplayError(
            f"converged flag {converged} contradicts error "
            f"{final_error!r} vs epsilon {epsilon!r}"
        )

    # Conservation of mass: every update either conserves each column's
    # sum exactly in real arithmetic (convex averages, route means,
    # cross-weighted affine exchanges, antisymmetric noise) or aborts
    # before touching the state — so the replayed sums may drift from
    # the initial ones only by accumulated float rounding.
    matrix = values if values.ndim == 2 else values[:, None]
    initial_matrix = initial if initial.ndim == 2 else initial[:, None]
    drift = np.abs(matrix.sum(axis=0) - initial_matrix.sum(axis=0))
    scale = np.maximum(np.abs(initial_matrix).sum(axis=0), 1.0)
    mass_drift = float((drift / scale).max())
    if mass_drift > _MASS_TOLERANCE:
        raise ReplayError(
            f"conservation of mass violated: relative column-sum drift "
            f"{mass_drift:.3e} exceeds {_MASS_TOLERANCE:.0e}"
        )

    return ReplayResult(
        algorithm=str(start["algorithm"]),
        n=n,
        fields=int(start.get("k", 1)),
        epsilon=epsilon,
        check_stride=int(start.get("stride", 1)),
        values=values,
        initial_values=initial,
        transmissions=snapshot,
        ticks=ticks,
        converged=converged,
        error=final_error,
        checks=checks,
        batches=batches,
        aborted_routes=aborted,
        wasted_ticks=wasted,
        lost_transmissions=lost,
        crashes=crashes,
        recoveries=recoveries,
        live=live,
        mass_drift=mass_drift,
    )


def replay_file(path: "str | Path") -> ReplayResult:
    """:func:`replay_events` over a JSONL trace file."""
    return replay_events(load_trace(path))


def validate_result(replay: ReplayResult, result) -> None:
    """Assert a replay equals a live :class:`GossipRunResult` exactly."""
    problems = []
    if not np.array_equal(replay.values, result.values):
        problems.append("final values differ")
    if replay.transmissions != dict(result.transmissions):
        problems.append(
            f"transmissions {replay.transmissions} != "
            f"{dict(result.transmissions)}"
        )
    if replay.ticks != result.ticks:
        problems.append(f"ticks {replay.ticks} != {result.ticks}")
    if replay.converged != result.converged:
        problems.append(
            f"converged {replay.converged} != {result.converged}"
        )
    if replay.error != result.error:
        problems.append(f"error {replay.error!r} != {result.error!r}")
    if problems:
        raise ReplayError(
            "replay does not match the live run: " + "; ".join(problems)
        )


def validate_record(replay: ReplayResult, record) -> None:
    """Assert a replay equals a stored
    :class:`~repro.engine.executor.CellRecord` exactly — including the
    fault metrics and per-column field errors re-derived from the trace.
    """
    problems = []
    if replay.algorithm != record.algorithm:
        problems.append(
            f"algorithm {replay.algorithm!r} != {record.algorithm!r}"
        )
    if replay.n != record.n:
        problems.append(f"n {replay.n} != {record.n}")
    if replay.epsilon != record.epsilon:
        problems.append(f"epsilon {replay.epsilon!r} != {record.epsilon!r}")
    if replay.transmissions != dict(record.transmissions):
        problems.append(
            f"transmissions {replay.transmissions} != "
            f"{dict(record.transmissions)}"
        )
    if replay.ticks != record.ticks:
        problems.append(f"ticks {replay.ticks} != {record.ticks}")
    if replay.converged != record.converged:
        problems.append(
            f"converged {replay.converged} != {record.converged}"
        )
    if replay.error != record.error:
        problems.append(f"error {replay.error!r} != {record.error!r}")
    if record.faults is not None:
        derived = replay.fault_metrics()
        if derived != dict(record.faults):
            problems.append(
                f"fault metrics {derived} != {dict(record.faults)}"
            )
    if record.field_errors is not None:
        derived_columns = replay.field_errors
        if derived_columns is None:
            problems.append(
                "record has field_errors but the trace is scalar"
            )
        elif tuple(float(v) for v in derived_columns) != tuple(
            record.field_errors
        ):
            problems.append(
                f"field errors {tuple(derived_columns)} != "
                f"{tuple(record.field_errors)}"
            )
    if problems:
        raise ReplayError(
            f"replay does not match cell "
            f"({record.algorithm}, n={record.n}, trial={record.trial}): "
            + "; ".join(problems)
        )
