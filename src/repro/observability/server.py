"""The scrape endpoint: ``/metrics`` and ``/healthz`` over stdlib HTTP.

The sweep-service coordinator (``repro serve-sweep --metrics-port``)
runs a :class:`MetricsServer` beside its poll loop so operators can
watch a fleet live instead of tailing republished files:

* ``GET /metrics`` — the active registry rendered in Prometheus text
  exposition format 0.0.4 (queue depth, leases by state, reclamations,
  per-worker throughput, route-cache totals, engine counters).
* ``GET /healthz`` — a JSON liveness document built by a caller-supplied
  callable; the coordinator wires in fresh
  :func:`repro.observability.telemetry.service_telemetry` output so the
  health answer reflects the queue *now*, not the last publish.  The
  document defaults to ``{"status": "ok", …}``, and a ``"status"`` key
  in the callable's payload **overrides** the default — the daemon
  coordinator reports ``"draining"`` once the drain marker is set, so a
  scraper can follow the lifecycle from the endpoint alone.

The server is a :class:`~http.server.ThreadingHTTPServer` on a daemon
thread: scrapes never block the coordinator, and an abandoned server
dies with the process.  Binding to port 0 picks an ephemeral port
(reported by :meth:`MetricsServer.start` and the ``port`` attribute),
which is what the test suite uses.

>>> from repro.observability.metrics import MetricsRegistry
>>> server = MetricsServer(MetricsRegistry())
>>> server.port is None   # not bound until start()
True
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.observability.metrics import CONTENT_TYPE, MetricsRegistry

__all__ = ["MetricsServer"]


class _ScrapeHandler(BaseHTTPRequestHandler):
    """Routes ``GET /metrics`` and ``GET /healthz``; silences logging."""

    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        """Serve one scrape request."""
        owner: "MetricsServer" = self.server.owner  # type: ignore[attr-defined]
        if self.path in ("/metrics", "/metrics/"):
            body = owner.registry.render_prometheus().encode("utf-8")
            self._respond(200, CONTENT_TYPE, body)
        elif self.path in ("/healthz", "/healthz/"):
            try:
                payload = owner.health() if owner.health is not None else {}
                # A "status" key in the payload wins over the default —
                # the daemon's lifecycle signal ("draining").
                document = {"status": "ok", **payload}
                status = 200
            except Exception as error:  # pragma: no cover — defensive
                document = {"status": "error", "error": str(error)}
                status = 500
            body = json.dumps(document, sort_keys=True).encode("utf-8")
            self._respond(status, "application/json", body)
        else:
            self._respond(404, "text/plain; charset=utf-8", b"not found\n")

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        """Drop per-request stderr logging (scrapes are periodic noise)."""


class MetricsServer:
    """Serves a registry's scrape endpoints from a daemon thread.

    Parameters: ``registry`` is the
    :class:`~repro.observability.metrics.MetricsRegistry` to expose;
    ``port`` 0 (the default) binds an ephemeral port; ``host`` defaults
    to loopback — a metrics endpoint is an operator surface, not a
    public one; ``health`` is an optional zero-argument callable
    returning the JSON-serialisable ``/healthz`` payload.

    >>> from repro.observability.metrics import MetricsRegistry
    >>> registry = MetricsRegistry()
    >>> registry.gauge("repro_queue_depth", "Pending cells.").set(5)
    >>> server = MetricsServer(registry)
    >>> port = server.start()
    >>> import urllib.request
    >>> with urllib.request.urlopen(
    ...     f"http://127.0.0.1:{port}/metrics") as response:
    ...     text = response.read().decode()
    >>> "repro_queue_depth 5" in text
    True
    >>> server.stop()
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
        health=None,
    ):
        self.registry = registry
        self.health = health
        self.host = host
        self.requested_port = port
        self.port: "int | None" = None
        self._server: "ThreadingHTTPServer | None" = None
        self._thread: "threading.Thread | None" = None

    def start(self) -> int:
        """Bind, start serving on a daemon thread, return the bound port."""
        if self._server is not None:
            raise RuntimeError("metrics server already started")
        server = ThreadingHTTPServer(
            (self.host, self.requested_port), _ScrapeHandler
        )
        server.daemon_threads = True
        server.owner = self  # type: ignore[attr-defined]
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        """Shut the server down and release the port (idempotent)."""
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    @property
    def url(self) -> "str | None":
        """Base URL once started (``http://host:port``), else ``None``."""
        if self.port is None:
            return None
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "MetricsServer":
        """Start on entry so ``with MetricsServer(...) as s:`` just works."""
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        """Stop on exit; exceptions propagate."""
        self.stop()
        return False
