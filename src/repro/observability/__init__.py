"""Structured event tracing, replay validation, and run telemetry.

Three pieces make engine runs debuggable and independently checkable:

* :mod:`repro.observability.events` — an opt-in structured event stream.
  A :class:`~repro.observability.events.TraceRecorder` activated with
  :func:`~repro.observability.events.capture` receives every observable
  action of a run — pair updates, route hops, loss drops, aborted
  transactions, crash/recover epochs, convergence checks — as plain
  dictionaries, serialisable to JSONL.  When no recorder is active the
  instrumented hot paths reduce to one predictable ``is None`` branch,
  and the recorder never touches any RNG, so traced and untraced runs
  are identical in values, ticks, and transmissions (golden-suite
  tested) and trace-off runs are bit-identical to the pre-observability
  engine.
* :mod:`repro.observability.replay` — a replay engine that re-derives a
  run's error decay, transmission counts, conservation of mass, and
  fault metrics from the trace *alone* and asserts them against the
  live results — a cheap independent cross-check of the whole engine,
  run in CI on every golden-trace configuration.
* :mod:`repro.observability.telemetry` — lightweight per-cell counters
  and timers (ticks/sec, route-cache hit/repair/drop counts, fallback
  occurrences) surfaced in
  :class:`~repro.engine.executor.CellRecord` and the sweep report.

Three more pieces make a *running* sweep observable live:

* :mod:`repro.observability.metrics` — an opt-in pull-based metrics
  registry (labelled counters, gauges, fixed-bucket histograms) with
  Prometheus text-exposition rendering.  Hot layers either update it at
  window granularity or register pull-time collectors, so the same
  bit-identity and ``is None``-when-off guarantees as tracing hold
  (benchmark E22 caps the enabled overhead at 1.05×).
* :mod:`repro.observability.profile` — a nestable span profiler on
  :func:`time.perf_counter` aggregating into a per-phase hotpath table
  (count, total, mean, p50/p99), surfaced by ``repro profile``.
* :mod:`repro.observability.server` — the stdlib HTTP scrape endpoint
  (``GET /metrics``, ``GET /healthz``) the sweep-service coordinator
  runs behind ``repro serve-sweep --metrics-port``.

Layering: :mod:`~repro.observability.events`,
:mod:`~repro.observability.telemetry`,
:mod:`~repro.observability.metrics`, and
:mod:`~repro.observability.profile` are leaf modules (stdlib only), so
every protocol and routing layer can import them without cycles;
:mod:`~repro.observability.server` imports only the metrics leaf, and
:mod:`~repro.observability.replay` sits *above* the gossip/dynamics
layers it replays and is re-exported lazily.
"""

from repro.observability import events, metrics, profile, server
from repro.observability.events import TraceRecorder, active, capture, suspend
from repro.observability.metrics import MetricsRegistry
from repro.observability.profile import SpanProfiler
from repro.observability.server import MetricsServer
from repro.observability.telemetry import (
    cache_stats,
    collect_telemetry,
    metric_deltas,
    service_telemetry,
)

__all__ = [
    "MetricsRegistry",
    "MetricsServer",
    "SpanProfiler",
    "TraceRecorder",
    "active",
    "cache_stats",
    "capture",
    "collect_telemetry",
    "events",
    "metric_deltas",
    "metrics",
    "profile",
    "server",
    "service_telemetry",
    "suspend",
    # Lazily re-exported from repro.observability.replay (see __getattr__):
    "ReplayError",
    "ReplayResult",
    "replay_events",
    "replay_file",
    "validate_record",
    "validate_result",
]

#: Names served from :mod:`repro.observability.replay` on first access.
#: Replay imports the gossip/metrics layers (which themselves import
#: :mod:`repro.observability.events`), so importing it eagerly here
#: would close an import cycle through the package ``__init__``.
_REPLAY_EXPORTS = frozenset(
    {
        "ReplayError",
        "ReplayResult",
        "replay_events",
        "replay_file",
        "validate_record",
        "validate_result",
    }
)


def __getattr__(name: str):
    if name in _REPLAY_EXPORTS:
        from repro.observability import replay

        return getattr(replay, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
