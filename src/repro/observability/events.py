"""The structured event stream: recorder, activation, JSONL persistence.

Every instrumented layer of the engine (the batched driver, the routers,
the dynamics overlay, each protocol's ``tick``/``tick_block``) asks
:func:`active` for the current recorder and emits plain-dictionary
events only when one is installed.  Design rules that keep the stream
trustworthy:

* **Purely observational.**  Emission never consumes randomness, never
  allocates on the hot path when no recorder is active (one module-level
  read and an ``is None`` branch), and never changes a code path — so
  trace-off runs are bit-identical to an uninstrumented engine and
  trace-on runs are identical in values, ticks, and transmissions
  (asserted in the golden-trace suite).
* **Emitted at the charge site.**  Transmission-shaped events (``route``,
  ``drop``, charged ``pairs``/``path``) are emitted exactly where the
  corresponding :class:`~repro.routing.cost.TransmissionCounter` charge
  happens — the layer holding a non-``None`` counter — so summing the
  charges implied by a trace reproduces the run's per-category counts
  exactly (the replay engine asserts this).
* **Plain JSON types only.**  Values are Python ints/floats/lists —
  ``json`` round-trips float64 exactly (shortest-repr serialisation),
  which is what lets replay re-derive errors *bitwise*.

One run is one well-formed trace: a ``start`` event, a body of updates
and checks, one ``end`` event.  Runs that execute *inside* another run
(the engine's per-column multi-field fallback, rounds-based delegation)
are wrapped in :func:`suspend` so a trace never interleaves two runs.

The event vocabulary is documented in ``docs/observability.md``; the
replay semantics live in :mod:`repro.observability.replay`.

>>> active() is None
True
>>> with capture() as recorder:
...     rec = active()
...     rec.emit({"e": "check", "ticks": 12, "tx": 24, "error": 0.5})
...     with suspend():
...         inner = active()
>>> rec is recorder, inner is None, active() is None
(True, True, True)
>>> len(recorder)
1
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TraceRecorder",
    "active",
    "capture",
    "load_trace",
    "start_event",
    "suspend",
]

#: Bumped whenever the event vocabulary changes incompatibly; the replay
#: engine refuses traces from a different major schema.
TRACE_SCHEMA_VERSION = 1

_ACTIVE: "TraceRecorder | None" = None


class TraceRecorder:
    """An append-only buffer of trace events for one run.

    Events are plain dictionaries; serialisation is deferred to
    :meth:`write` so the per-event cost during the run is one list
    append.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        """Append one event (no validation — the hot path stays cheap)."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def annotate(self, **extra) -> None:
        """Merge metadata into the trace's ``start`` event.

        The engine layer that *owns* a run's identity (e.g. the sweep
        executor, which knows the ``(algorithm, n, trial)`` cell) calls
        this after the run so replay tooling can match the trace to its
        stored :class:`~repro.engine.executor.CellRecord`.
        """
        if not self.events or self.events[0].get("e") != "start":
            raise ValueError("no start event to annotate")
        self.events[0].update(extra)

    def write(self, path: str | Path) -> Path:
        """Write the buffered events to ``path`` as JSON lines."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event, separators=(",", ":")))
                handle.write("\n")
        return path


def active() -> "TraceRecorder | None":
    """The recorder instrumented code should emit to (``None`` = off)."""
    return _ACTIVE


@contextmanager
def capture():
    """Activate a fresh :class:`TraceRecorder` for the enclosed run.

    Exactly one recorder may be active at a time — a trace is one run's
    event stream, and nesting captures would interleave two runs.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError(
            "a trace capture is already active; one recorder traces one "
            "run at a time"
        )
    recorder = TraceRecorder()
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = None


@contextmanager
def suspend():
    """Temporarily deactivate tracing for a nested run.

    The engine's per-column multi-field fallback and its rounds-based
    delegation execute whole runs *inside* the traced run; suspending
    keeps the outer trace well-formed (one ``start``, one ``end``)
    instead of interleaving events from runs the replay engine cannot
    attribute.
    """
    global _ACTIVE
    saved = _ACTIVE
    _ACTIVE = None
    try:
        yield
    finally:
        _ACTIVE = saved


def start_event(algorithm, initial_values, epsilon: float, stride: int) -> dict:
    """The run-opening event: everything replay needs to reconstruct.

    ``initial`` carries the full starting state (exact float64 via JSON
    shortest-repr); protocols with fixed per-node coefficients (the
    affine :math:`K_n` family) contribute them once here instead of per
    exchange.
    """
    fields = 1 if initial_values.ndim == 1 else int(initial_values.shape[1])
    event = {
        "e": "start",
        "v": TRACE_SCHEMA_VERSION,
        "algorithm": str(getattr(algorithm, "name", type(algorithm).__name__)),
        "n": int(initial_values.shape[0]),
        "k": fields,
        "epsilon": float(epsilon),
        "stride": int(stride),
        "initial": initial_values.tolist(),
    }
    alphas = getattr(algorithm, "alphas", None)
    if alphas is not None:
        event["alphas"] = [float(alpha) for alpha in alphas]
    return event


def load_trace(path: str | Path) -> list[dict]:
    """Read a JSONL trace written by :meth:`TraceRecorder.write`."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not a JSON event line ({error})"
                ) from error
    return events
