"""The span profiler: nestable wall-clock spans and a hotpath table.

Where :mod:`repro.observability.metrics` counts *how much*, this module
measures *where the time goes*: instrumented layers wrap their phases in
``with profile.span("window"):`` blocks and an active
:class:`SpanProfiler` aggregates the durations into a per-phase hotpath
table (count, total, mean, p50, p99).  Nested spans compose into dotted
paths — a ``"check"`` span opened inside a ``"run"`` span aggregates
under ``"run.check"`` — so the table reads as a call-tree flattened by
phase.

The activation contract matches the event recorder's exactly:

* **Off by default.**  :func:`span` returns a shared no-op context
  manager when no profiler is active — one module-level read, an ``is
  None`` branch, and *no allocation* (the same singleton every time,
  asserted in the test battery).
* **Purely observational.**  Spans read :func:`time.perf_counter` and
  nothing else: no RNG, no code-path changes, so profiled runs are
  bit-identical to unprofiled ones in values, ticks, and transmissions.
* **Window-granular.**  The engine opens spans per tick *window* (one
  per thousands of ticks), never per tick or per route, keeping the
  enabled overhead inside benchmark E22's ≤1.05× ceiling.

Per-span samples are kept for the percentiles under a deterministic
decimation policy (no reservoir RNG): when a phase's sample buffer
fills, every second sample is dropped and the sampling stride doubles.
Percentiles are nearest-rank over the retained samples.

>>> active() is None
True
>>> span("window") is span("check")   # disabled: one shared no-op
True
>>> with capture() as profiler:
...     with span("run"):
...         for _ in range(3):
...             with span("window"):
...                 pass
>>> [(row["span"], row["count"]) for row in profiler.hotpath_table()]
[('run', 1), ('run.window', 3)]
>>> active() is None
True
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from time import perf_counter

__all__ = [
    "SpanProfiler",
    "active",
    "capture",
    "render_table",
    "span",
]

#: Per-phase sample cap; past it, decimation halves the buffer and
#: doubles the sampling stride (keeping percentile memory bounded).
SAMPLE_CAP = 4096

_ACTIVE: "SpanProfiler | None" = None


class _NoopSpan:
    """The shared do-nothing span returned while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _SpanStat:
    """Aggregated timings for one span path."""

    __slots__ = ("count", "total", "samples", "stride")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.samples: list[float] = []
        self.stride = 1

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if (self.count - 1) % self.stride == 0:
            self.samples.append(seconds)
            if len(self.samples) >= SAMPLE_CAP:
                del self.samples[::2]
                self.stride *= 2

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]


class _SpanHandle:
    """One live ``with`` span: pushes its name, times, records on exit."""

    __slots__ = ("_profiler", "_name", "_path", "_start")

    def __init__(self, profiler: "SpanProfiler", name: str):
        self._profiler = profiler
        self._name = name
        self._path = ""
        self._start = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._path = self._profiler._push(self._name)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = perf_counter() - self._start
        self._profiler._pop(self._path, elapsed)
        return False


class SpanProfiler:
    """Aggregates nested span timings into a per-phase hotpath table.

    Span nesting is tracked per thread (a heartbeat thread timing its
    own spans cannot corrupt the engine thread's path), while the
    aggregate table is shared under a lock.

    >>> profiler = SpanProfiler()
    >>> with profiler.span("run"):
    ...     with profiler.span("check"):
    ...         pass
    >>> sorted(stat["span"] for stat in profiler.hotpath_table())
    ['run', 'run.check']
    """

    def __init__(self) -> None:
        self._stats: dict[str, _SpanStat] = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    def span(self, name: str) -> _SpanHandle:
        """A context manager timing one phase (nests into dotted paths)."""
        return _SpanHandle(self, name)

    def _push(self, name: str) -> str:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        path = f"{stack[-1]}.{name}" if stack else name
        stack.append(path)
        return path

    def _pop(self, path: str, seconds: float) -> None:
        self._local.stack.pop()
        with self._lock:
            stat = self._stats.get(path)
            if stat is None:
                stat = self._stats[path] = _SpanStat()
            stat.add(seconds)

    def __len__(self) -> int:
        """Number of distinct span paths recorded so far."""
        with self._lock:
            return len(self._stats)

    def hotpath_table(self) -> list[dict]:
        """Per-phase rows sorted by total time, hottest first.

        Each row carries ``span``, ``count``, ``total``, ``mean``,
        ``p50``, and ``p99`` (seconds).
        """
        with self._lock:
            items = list(self._stats.items())
        rows = []
        for path, stat in items:
            rows.append(
                {
                    "span": path,
                    "count": stat.count,
                    "total": stat.total,
                    "mean": stat.total / stat.count if stat.count else 0.0,
                    "p50": stat.percentile(0.50),
                    "p99": stat.percentile(0.99),
                }
            )
        rows.sort(key=lambda row: (-row["total"], row["span"]))
        return rows

    def render_table(self) -> str:
        """The hotpath table as aligned monospace text."""
        return render_table(self.hotpath_table())


def render_table(rows: list) -> str:
    """Format hotpath rows (see :meth:`SpanProfiler.hotpath_table`).

    >>> print(render_table([{"span": "run", "count": 2, "total": 0.5,
    ...                      "mean": 0.25, "p50": 0.2, "p99": 0.3}]))
    span  count    total     mean      p50      p99
    run       2  500.0ms  250.0ms  200.0ms  300.0ms
    """
    if not rows:
        return "(no spans recorded)"
    header = ("span", "count", "total", "mean", "p50", "p99")
    table = [header]
    for row in rows:
        table.append(
            (
                row["span"],
                str(row["count"]),
                _format_seconds(row["total"]),
                _format_seconds(row["mean"]),
                _format_seconds(row["p50"]),
                _format_seconds(row["p99"]),
            )
        )
    widths = [max(len(line[col]) for line in table) for col in range(len(header))]
    lines = []
    for line in table:
        first = line[0].ljust(widths[0])
        rest = "  ".join(
            cell.rjust(width) for cell, width in zip(line[1:], widths[1:])
        )
        lines.append(f"{first}  {rest}".rstrip())
    return "\n".join(lines)


def _format_seconds(seconds: float) -> str:
    """Human-scale duration: µs/ms below a second, seconds above."""
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.1f}µs"


def active() -> "SpanProfiler | None":
    """The profiler instrumented code should time under (``None`` = off)."""
    return _ACTIVE


def span(name: str):
    """A span under the active profiler, or the shared no-op when off.

    This is the one call instrumented layers make.  Disabled cost is a
    module read, an ``is None`` branch, and no allocation.
    """
    profiler = _ACTIVE
    if profiler is None:
        return _NOOP_SPAN
    return profiler.span(name)


@contextmanager
def capture(profiler: "SpanProfiler | None" = None):
    """Activate a profiler for the enclosed block, then restore the old.

    Unlike event capture, span captures may nest (an outer benchmark
    harness profiling a block that itself profiles): the inner capture
    simply shadows the outer for its extent.
    """
    global _ACTIVE
    saved = _ACTIVE
    _ACTIVE = profiler if profiler is not None else SpanProfiler()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = saved
