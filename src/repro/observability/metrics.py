"""The pull-based metrics registry: labelled counters, gauges, histograms.

Where :mod:`repro.observability.events` answers "what happened, in
order", this module answers "how much, right now": live operational
counters a scraper can pull from a running sweep service.  The design
rules mirror the event recorder's, because they are what keep the
engine's bit-identity guarantees intact:

* **Off by default.**  Instrumented layers ask :func:`active` for the
  current registry and update metrics only when one is installed.  When
  none is, the hot-path cost is one module-level read and an ``is
  None`` branch — no allocation, no locking.
* **Purely observational.**  The registry never consumes randomness and
  never changes a code path, so metrics-on runs are bit-identical to
  metrics-off runs in values, ticks, and transmissions (golden-suite
  tested, and held to a ≤1.05× wall-clock ceiling by benchmark E22).
* **Pull, not push, for the hottest sites.**  Layers whose own counters
  already exist (the route cache's ``hits``/``misses``) do not pay a
  registry update per operation; they register a *collector* via
  :meth:`MetricsRegistry.add_collector` and the registry reads their
  state at scrape time.  Per-operation :meth:`Counter.inc` calls are
  reserved for rare sites (per-window engine checks, lease operations,
  fault epochs, shard merges).

Naming follows the Prometheus conventions: ``repro_`` prefix, base
units, ``_total`` suffix on counters, labels for bounded dimensions only
(algorithm, worker, state, priority — never per-node or per-tick
values).  One instrument may carry an unlabelled series *and* labelled
splits of it side by side — the sweep service publishes
``repro_queue_depth`` as the bare total plus one
``repro_queue_depth{priority="p0"}``… series per priority class.
:meth:`MetricsRegistry.render_prometheus` produces text exposition
format 0.0.4, which is what the sweep coordinator's ``/metrics``
endpoint (:mod:`repro.observability.server`) serves.

>>> active() is None
True
>>> with expose() as registry:
...     registry.counter("repro_demo_total", "Demo counter.").inc(
...         2, algorithm="geographic")
...     registry.gauge("repro_demo_depth", "Demo gauge.").set(3)
...     text = registry.render_prometheus()
>>> print(text)
# HELP repro_demo_depth Demo gauge.
# TYPE repro_demo_depth gauge
repro_demo_depth 3
# HELP repro_demo_total Demo counter.
# TYPE repro_demo_total counter
repro_demo_total{algorithm="geographic"} 2
<BLANKLINE>
>>> active() is None
True
"""

from __future__ import annotations

import math
import re
import threading
import weakref
from contextlib import contextmanager

__all__ = [
    "CONTENT_TYPE",
    "CollectorSink",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active",
    "cache_collector",
    "disable",
    "enable",
    "expose",
]

#: HTTP content type of the exposition format ``render_prometheus``
#: emits, advertised by the ``/metrics`` endpoint.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default histogram buckets, tuned for the sub-second spans this repo
#: measures (cell execution, lease hold times).  Upper bounds are
#: inclusive, matching Prometheus ``le`` semantics.
DEFAULT_BUCKETS = (0.005, 0.025, 0.1, 0.25, 1.0, 2.5, 10.0, 30.0)

_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

_ACTIVE: "MetricsRegistry | None" = None


def active() -> "MetricsRegistry | None":
    """The registry instrumented code should update (``None`` = off)."""
    return _ACTIVE


def enable(registry: "MetricsRegistry | None" = None) -> "MetricsRegistry":
    """Install ``registry`` (or a fresh one) as the process-wide registry.

    Unlike event capture, metrics are a long-lived concern — a daemon
    enables one registry at startup and leaves it on — so ``enable`` /
    :func:`disable` are plain calls rather than a context manager.
    Scoped use (tests, benchmarks) should prefer :func:`expose`.
    """
    global _ACTIVE
    if registry is None:
        registry = MetricsRegistry()
    _ACTIVE = registry
    return registry


def disable() -> None:
    """Deactivate metrics collection; :func:`active` returns ``None``."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def expose(registry: "MetricsRegistry | None" = None):
    """Activate a registry for the enclosed block, then restore the old.

    >>> with expose() as registry:
    ...     active() is registry
    True
    >>> active() is None
    True
    """
    global _ACTIVE
    saved = _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = saved


def _label_key(labels: dict) -> tuple:
    """Canonical, hashable form of a label set (sorted name/value pairs)."""
    if not labels:
        return ()
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_value(value: float) -> str:
    """Render a sample value: integers bare, floats via ``repr``."""
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _series_name(name: str, key: tuple) -> str:
    """Render ``name{label="value",...}`` for one labelled series."""
    if not key:
        return name
    inner = ",".join(
        f'{label}="{_escape_label_value(value)}"' for label, value in key
    )
    return f"{name}{{{inner}}}"


class _Metric:
    """Shared bookkeeping for one named family of labelled series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self._lock = lock
        self._series: dict[tuple, float] = {}

    def _key(self, labels: dict) -> tuple:
        for label in labels:
            if not _LABEL_NAME.match(label):
                raise ValueError(f"invalid label name {label!r}")
        return _label_key(labels)

    def labels(self) -> list[tuple]:
        """The label sets observed so far (sorted for stable output)."""
        with self._lock:
            return sorted(self._series)


class Counter(_Metric):
    """A monotonically increasing labelled counter.

    >>> registry = MetricsRegistry()
    >>> cells = registry.counter("repro_cells_total", "Cells executed.")
    >>> cells.inc(algorithm="randomized")
    >>> cells.inc(2, algorithm="randomized")
    >>> cells.value(algorithm="randomized")
    3.0
    >>> cells.value(algorithm="geographic")
    0.0
    """

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be ≥ 0) to the series for ``labels``."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def set_total(self, value: float, **labels) -> None:
        """Mirror an externally accumulated monotone total.

        The sweep coordinator aggregates counts it does not itself
        produce (queue completions, per-worker cell counts, route-cache
        totals summed from landed cell records); ``set_total`` lets it
        publish those as counters without double counting.  The value
        must not move backwards.
        """
        key = self._key(labels)
        with self._lock:
            if value < self._series.get(key, 0.0):
                raise ValueError(
                    f"counter {self.name} cannot decrease "
                    f"({value} < {self._series[key]})"
                )
            self._series[key] = float(value)

    def value(self, **labels) -> float:
        """Current value of one labelled series (0.0 if never touched)."""
        with self._lock:
            return self._series.get(self._key(labels), 0.0)


class Gauge(_Metric):
    """A labelled gauge: a value that can go up and down.

    >>> registry = MetricsRegistry()
    >>> depth = registry.gauge("repro_queue_depth", "Pending cells.")
    >>> depth.set(7)
    >>> depth.inc(-3)
    >>> depth.value()
    4.0
    """

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set the series for ``labels`` to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (may be negative) to the series for ``labels``."""
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value of one labelled series (0.0 if never set)."""
        with self._lock:
            return self._series.get(self._key(labels), 0.0)


class Histogram(_Metric):
    """A fixed-bucket labelled histogram (cumulative ``le`` buckets).

    Bucket upper bounds are inclusive and fixed at construction; a
    ``+Inf`` bucket, ``_sum``, and ``_count`` series are implicit, as in
    the Prometheus exposition format.

    >>> registry = MetricsRegistry()
    >>> hist = registry.histogram(
    ...     "repro_cell_seconds", "Cell wall clock.", buckets=(0.1, 1.0))
    >>> hist.observe(0.1)   # on the edge: le="0.1" is inclusive
    >>> hist.observe(0.5)
    >>> hist.observe(30.0)  # overflows into +Inf only
    >>> hist.bucket_counts()
    {0.1: 1, 1.0: 2, inf: 3}
    >>> hist.count(), round(hist.sum(), 10)
    (3, 30.6)
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: tuple = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help_text, lock)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or sorted(bounds) != list(bounds):
            raise ValueError("histogram buckets must be sorted and non-empty")
        if math.inf in bounds:
            bounds = bounds[:-1]
        self.buckets = bounds
        # Per label set: [bucket counts..., +Inf count, sum].
        self._series: dict[tuple, list] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the series for ``labels``."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = [0] * (len(self.buckets) + 1) + [0.0]
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series[index] += 1
            series[len(self.buckets)] += 1
            series[-1] += float(value)

    def bucket_counts(self, **labels) -> dict:
        """Cumulative counts per upper bound, ``inf`` last."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            counts = list(series[:-1]) if series else [0] * (len(self.buckets) + 1)
        bounds = list(self.buckets) + [math.inf]
        return dict(zip(bounds, counts))

    def count(self, **labels) -> int:
        """Total number of observations for ``labels``."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return int(series[len(self.buckets)]) if series else 0

    def sum(self, **labels) -> float:
        """Sum of all observed values for ``labels``."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return float(series[-1]) if series else 0.0


class MetricsRegistry:
    """A thread-safe collection of metrics with pull-time collectors.

    Instruments are created lazily and get-or-create by name —
    instrumented layers call ``registry.counter(name, help)`` at the
    update site without coordinating registration.  Asking for an
    existing name with a different metric type raises.

    >>> registry = MetricsRegistry()
    >>> a = registry.counter("repro_x_total", "X.")
    >>> a is registry.counter("repro_x_total", "X.")
    True
    >>> registry.gauge("repro_x_total", "X.")
    Traceback (most recent call last):
        ...
    ValueError: metric 'repro_x_total' already registered as counter
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list = []
        #: Per-collector last report, folded into ``_retired`` when the
        #: collector's owner is garbage collected — keeps collected
        #: counters cumulative across object lifetimes.
        self._last_reports: dict[int, "CollectorSink"] = {}
        self._retired: dict[tuple, tuple] = {}

    def _instrument(self, cls, name: str, help_text: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, self._lock, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create the :class:`Counter` called ``name``."""
        return self._instrument(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create the :class:`Gauge` called ``name``."""
        return self._instrument(Gauge, name, help_text)

    def histogram(
        self, name: str, help_text: str = "", buckets: tuple = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the :class:`Histogram` called ``name``."""
        return self._instrument(Histogram, name, help_text, buckets=buckets)

    def add_collector(self, collect) -> None:
        """Register a pull-time collector, called before every scrape.

        ``collect`` is invoked with a :class:`CollectorSink` and should
        report its owner's *current cumulative* counts; the registry
        sums reports across collectors (several live route caches add
        up) and publishes the sums monotonically.  A collector that
        raises :class:`ReferenceError` — the natural failure of a
        ``weakref``-holding closure whose owner was garbage collected —
        is dropped silently, so hot objects can register themselves
        without extending their own lifetime.
        """
        self._collectors.append(collect)

    def collect(self) -> None:
        """Run all registered collectors, pruning dead ones.

        Collected counter series stay cumulative across their owners'
        lifetimes: each collector's latest report is remembered, and
        when its owner is garbage collected (the collector raises
        :class:`ReferenceError`) that last report folds into a retired
        base the live sums stack on.  Counts an object accrued *after*
        its last scrape and before collection are lost — the inherent
        imprecision of pull-based metrics — but the exported series
        never decreases, and anything scraped once is never un-counted.
        """
        live_sums = CollectorSink()
        live = []
        for collector in list(self._collectors):
            sink = CollectorSink()
            try:
                collector(sink)
            except ReferenceError:
                last = self._last_reports.pop(id(collector), None)
                if last is not None:
                    for key, (help_text, value) in last._counters.items():
                        _, base = self._retired.get(key, (help_text, 0.0))
                        self._retired[key] = (help_text, base + value)
                continue
            live.append(collector)
            self._last_reports[id(collector)] = sink
            for key, (help_text, value) in sink._counters.items():
                live_sums.counter(key[0], value, help_text, **dict(key[1]))
            for key, (help_text, value) in sink._gauges.items():
                live_sums.gauge(key[0], value, help_text, **dict(key[1]))
        self._collectors = live
        totals = dict(live_sums._counters)
        for key, (help_text, base) in self._retired.items():
            prior_help, value = totals.get(key, (help_text, 0.0))
            totals[key] = (prior_help or help_text, base + value)
        for (name, key), (help_text, value) in totals.items():
            metric = self.counter(name, help_text)
            with self._lock:
                # Monotone guard: a raced report can only hold, not
                # rewind, the exported value.
                if value > metric._series.get(key, 0.0):
                    metric._series[key] = value
        for (name, key), (help_text, value) in live_sums._gauges.items():
            metric = self.gauge(name, help_text)
            with self._lock:
                metric._series[key] = value

    def snapshot(self) -> dict:
        """Flat ``{series: value}`` map of every scalar series.

        Runs collectors first.  Histograms contribute their ``_sum`` and
        ``_count`` series.  Series names are rendered exactly as in the
        exposition format, so snapshots diff cleanly against scrapes.
        """
        self.collect()
        out: dict[str, float] = {}
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        for metric in metrics:
            if isinstance(metric, Histogram):
                for key in metric.labels():
                    labels = dict(key)
                    out[_series_name(metric.name + "_count", key)] = float(
                        metric.count(**labels)
                    )
                    out[_series_name(metric.name + "_sum", key)] = metric.sum(
                        **labels
                    )
            else:
                for key in metric.labels():
                    out[_series_name(metric.name, key)] = metric.value(
                        **dict(key)
                    )
        return out

    def counter_totals(self) -> dict:
        """Flat ``{series: value}`` map of counter series only.

        Runs collectors first.  This is what
        :func:`repro.observability.telemetry.metric_deltas` diffs to
        attribute counter movement to one executed cell.
        """
        self.collect()
        out: dict[str, float] = {}
        with self._lock:
            counters = sorted(
                (m for m in self._metrics.values() if isinstance(m, Counter)),
                key=lambda m: m.name,
            )
        for counter in counters:
            for key in counter.labels():
                out[_series_name(counter.name, key)] = counter.value(**dict(key))
        return out

    def render_prometheus(self) -> str:
        """Render every metric in text exposition format 0.0.4.

        Families are sorted by name and series by label set, so output
        is deterministic for a given state.  Collectors run first.
        """
        self.collect()
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: list[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key in metric.labels():
                    labels = dict(key)
                    counts = metric.bucket_counts(**labels)
                    for bound, count in counts.items():
                        le = "+Inf" if bound == math.inf else _format_value(bound)
                        bucket_key = key + (("le", le),)
                        # ``le`` sorts inside the label set alphabetically
                        # in real exposition too; keep insertion order so
                        # buckets stay grouped and ascending.
                        lines.append(
                            f"{_series_name(metric.name + '_bucket', bucket_key)}"
                            f" {count}"
                        )
                    lines.append(
                        f"{_series_name(metric.name + '_sum', key)} "
                        f"{_format_value(metric.sum(**labels))}"
                    )
                    lines.append(
                        f"{_series_name(metric.name + '_count', key)} "
                        f"{metric.count(**labels)}"
                    )
            else:
                for key in metric.labels():
                    value = metric.value(**dict(key))
                    lines.append(
                        f"{_series_name(metric.name, key)} {_format_value(value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""




class CollectorSink:
    """Accumulates values reported by collectors during one scrape.

    Reports for the same ``(name, labels)`` series *sum* — several live
    route caches each report their own cumulative counts and the scrape
    exports the total.

    >>> sink = CollectorSink()
    >>> sink.counter("repro_hits_total", 3, "Hits.")
    >>> sink.counter("repro_hits_total", 4, "Hits.")
    >>> sink._counters[("repro_hits_total", ())]
    ('Hits.', 7.0)
    """

    def __init__(self) -> None:
        self._counters: dict[tuple, tuple] = {}
        self._gauges: dict[tuple, tuple] = {}

    def _add(self, store: dict, name: str, value: float, help_text: str, labels):
        key = (name, _label_key(labels))
        _, current = store.get(key, (help_text, 0.0))
        store[key] = (help_text, current + float(value))

    def counter(
        self, name: str, value: float, help_text: str = "", **labels
    ) -> None:
        """Report one object's cumulative count for a counter series."""
        self._add(self._counters, name, value, help_text, labels)

    def gauge(self, name: str, value: float, help_text: str = "", **labels) -> None:
        """Report one object's contribution to a gauge series."""
        self._add(self._gauges, name, value, help_text, labels)


def cache_collector(registry: "MetricsRegistry", cache) -> None:
    """Register pull-time route-cache series for ``cache``.

    Called by :class:`repro.routing.cache.CachedGreedyRouter` when a
    registry is active at construction.  Pull-time collection is what
    keeps the route hot path free: the cache maintains its own plain
    integer counters exactly as before, and the registry reads them only
    when scraped — zero cost per routed message, which is how benchmark
    E22 holds metrics-on runs to a ≤1.05× wall-clock ceiling.

    The collector holds only a weak reference, so registering never
    extends a cache's lifetime; once the cache is garbage collected the
    registry prunes the collector on the next scrape (exported counters
    hold their high-water marks).  Counts from multiple live caches
    (e.g. several trials of a tensor slice) sum.
    """
    ref = weakref.ref(cache)

    def collect(sink: CollectorSink) -> None:
        target = ref()
        if target is None:
            raise ReferenceError("route cache was garbage collected")
        sink.counter(
            "repro_route_cache_hits_total",
            target.hits,
            "Route-cache column hits.",
        )
        sink.counter(
            "repro_route_cache_misses_total",
            target.misses,
            "Route-cache misses (column builds).",
        )
        sink.counter(
            "repro_route_cache_invalidations_total",
            target.invalidations,
            "Route-cache invalidation events.",
        )
        sink.counter(
            "repro_route_cache_repairs_total",
            target.repairs,
            "Cached columns repaired in place on invalidation.",
        )
        sink.counter(
            "repro_route_cache_drops_total",
            target.drops,
            "Cached columns dropped on invalidation (past repair budget).",
        )

    registry.add_collector(collect)
