"""E9-PA — order-optimality: randomized path averaging vs the lineage.

The routed-gossip lineage this repository reproduces runs

* geographic gossip (Dimakis et al. 2006) — routed endpoint averaging,
  ``Õ(n^1.5)`` transmissions;
* randomized path averaging (Bénézit et al. 2008) — the same routed walk
  but averaging *every node on the route*, order-optimal ``Õ(n)``;
* the Lemma-1 affine dynamics on ``K_n`` — the idealised complete-graph
  comparator whose exchanges ignore the graph and cost 2 transmissions,
  i.e. the ``Θ(n log(1/ε))`` floor routed protocols chase.

This benchmark measures all three on the same placements and fields
(engine sweep cells, deterministic per-cell seeds) and fits log-log
cost-vs-n slopes.  The affine comparator runs on *centred* fields
(``x̄(0) = 0``, the paper's WLOG): its cross-weighted updates conserve
the sum but do not preserve a constant offset pointwise, so Lemma 1's
contraction is a statement about the mean-zero subspace — the same
centring E1 applies.

Expected picture: path averaging's mean message cost beats geographic
at every measured size (asserted at n=512), its fitted slope sits well
below geographic's ≈1.5, and the affine floor's slope is ≈1.
"""

import os
import time

import numpy as np

from _common import emit, emit_timing, timed_pedantic
from repro.engine.batching import run_batched
from repro.engine.executor import build_instance
from repro.experiments import (
    ExperimentConfig,
    aggregate_trials,
    fit_loglog_slope,
    format_table,
    make_algorithm,
    run_scaling_sweep,
    spawn_rng,
)

SIZES = (128, 256, 512)
EPSILON = 0.2
TRIALS = 2
FIELD = "gradient"
CHECK_STRIDE = 4
WORKERS = max(1, min(4, os.cpu_count() or 1))


def _affine_points(config):
    """Run the K_n affine comparator on centred copies of each trial field.

    Centring applies the paper's WLOG ``x̄(0) = 0``; without it a constant
    offset leaks deviation mass through the unequal coefficients and the
    comparator stalls at a floor instead of converging (module docstring).
    """
    points = []
    for n in config.sizes:
        results = []
        for trial in range(config.trials):
            graph, values = build_instance(config, n, trial)
            centred = values - values.mean()
            algorithm = make_algorithm("affine", graph)
            run_rng = spawn_rng(config.root_seed, "run", "affine", n, trial)
            results.append(
                run_batched(
                    algorithm,
                    centred,
                    config.epsilon,
                    run_rng,
                    check_stride=CHECK_STRIDE,
                )
            )
        points.append(aggregate_trials("affine", n, results))
    return points


def test_e09_path_averaging(benchmark):
    config = ExperimentConfig(
        sizes=SIZES,
        epsilon=EPSILON,
        trials=TRIALS,
        field=FIELD,
        algorithms=("geographic", "path-averaging"),
    )

    def comparison():
        timings = {}
        start = time.perf_counter()
        routed = run_scaling_sweep(
            config, workers=WORKERS, check_stride=CHECK_STRIDE
        )
        timings["routed"] = time.perf_counter() - start
        start = time.perf_counter()
        routed["affine"] = _affine_points(config)
        timings["affine"] = time.perf_counter() - start
        return routed, timings

    sweep, timings = timed_pedantic(
        benchmark,
        "e09_path_averaging",
        comparison,
        workers=WORKERS,
        check_stride=CHECK_STRIDE,
        sizes=list(SIZES),
        trials=TRIALS,
    )
    for stage, seconds in timings.items():
        emit_timing(
            f"e09_pa_{stage}",
            seconds,
            check_stride=CHECK_STRIDE,
            sizes=list(SIZES),
            trials=TRIALS,
        )

    names = ("geographic", "path-averaging", "affine")
    rows = []
    for n in SIZES:
        row = [n]
        for name in names:
            point = next(p for p in sweep[name] if p.n == n)
            row.append(int(point.transmissions_mean))
        rows.append(row)
    counts_table = format_table(
        ["n", *names],
        rows,
        title=(
            f"E9-PA  mean transmissions to eps={EPSILON} "
            f"({TRIALS} trials, shared RGG instances; affine on K_n, "
            "centred fields)"
        ),
    )

    slopes = {}
    for name in names:
        points = sweep[name]
        slopes[name] = fit_loglog_slope(
            np.array([p.n for p in points], dtype=float),
            np.array([p.transmissions_mean for p in points]),
        )
    slope_table = format_table(
        ["protocol", f"measured slope (n={SIZES[0]}..{SIZES[-1]})", "theory"],
        [
            ["geographic", slopes["geographic"], "1.5 (Dimakis et al.)"],
            [
                "path-averaging",
                slopes["path-averaging"],
                "1 + o(1) (Benezit et al., order-optimal)",
            ],
            ["affine (K_n floor)", slopes["affine"], "1 (complete graph)"],
        ],
        title="E9-PA  fitted log-log slopes",
    )
    emit("e09_path_averaging", counts_table + "\n\n" + slope_table)

    by_name = {
        name: {p.n: p for p in sweep[name]} for name in names
    }
    # Every routed cell converged; the acceptance comparison is at n=512.
    for name in ("geographic", "path-averaging"):
        for point in sweep[name]:
            assert point.converged_fraction == 1.0, (name, point.n)
    for n in SIZES:
        assert (
            by_name["path-averaging"][n].transmissions_mean
            < by_name["geographic"][n].transmissions_mean
        ), f"path averaging should beat geographic at n={n}"
    # Order separation: path averaging sits between the affine floor's
    # ~linear scaling and geographic's ~n^1.5.
    assert slopes["path-averaging"] < slopes["geographic"] - 0.2
    assert slopes["affine"] < 1.4
    benchmark.extra_info.update(
        {f"slope_{k}": round(v, 3) for k, v in slopes.items()}
    )
