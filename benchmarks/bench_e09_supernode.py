"""E9 — §3 supernode analysis: square sums contract at (1 − 1/(2k)) per exchange.

Paper claim (§3): with the unit square split into k ≈ √n subsquares whose
members hold common values, the affine exchanges make the sum-vector z
satisfy ``E‖z(t)‖² < (1 − 1/(2k))ᵗ‖z(0)‖²``, so O(k·log(k/ε)) exchanges
suffice at the top level.

Measured here: the top-level trace of the round executor (one point per
root exchange) — the fitted per-exchange decay of the global error²
against the predicted 1/(2k), and the exchange count against k·log(k/ε).
"""

import numpy as np

from _common import emit
from repro.experiments import format_table
from repro.gossip.hierarchical import HierarchicalGossip
from repro.graphs import RandomGeometricGraph


def test_e09_supernode_contraction(benchmark):
    n, epsilon = 512, 0.05

    def experiment():
        rng = np.random.default_rng(211)
        graph = RandomGeometricGraph.sample_connected(n, rng)
        algo = HierarchicalGossip(graph)
        x0 = np.random.default_rng(213).normal(size=n)
        result = algo.run(
            x0, epsilon, np.random.default_rng(217), trace_thinning=0.0
        )
        k = algo.tree.factors[0]
        root_exchanges = algo.stats.exchanges_by_depth.get(0, 0)
        return result, k, root_exchanges

    result, k, root_exchanges = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    assert result.converged

    # Points recorded during the root exchange loop: ticks = exchange index.
    # (The run's final point uses cumulative-action ticks — exclude it.)
    points = [
        p
        for p in result.trace.points
        if 0 < p.ticks <= root_exchanges and p.error > 0
    ]
    exchange_index = np.array([p.ticks for p in points], dtype=float)
    errors = np.array([p.error for p in points])
    # Fit on the tail (after intra-square settling stops dominating).
    tail = exchange_index > exchange_index.max() * 0.2
    slope = np.polyfit(exchange_index[tail], np.log(errors[tail] ** 2), 1)[0]
    measured_rate = -slope
    predicted_rate = 1.0 / (2.0 * k)
    predicted_exchanges = k * np.log(k / epsilon)

    emit(
        "e09_supernode",
        format_table(
            ["quantity", "measured", "paper prediction"],
            [
                ["top-level squares k", k, "≈ sqrt(n)"],
                ["per-exchange decay of ||z||²", measured_rate, predicted_rate],
                ["root exchanges to ε", root_exchanges, int(predicted_exchanges)],
                ["final error", result.error, f"≤ {epsilon}"],
            ],
            title=f"E9  supernode z-dynamics at n={n}, eps={epsilon}",
            precision=5,
        ),
    )
    # The measured decay should match 1/(2k) within a small constant.
    assert 0.3 * predicted_rate < measured_rate < 4.0 * predicted_rate
    assert root_exchanges < 6.0 * predicted_exchanges
