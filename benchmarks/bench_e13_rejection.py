"""E13 — rejection sampling makes node targets nearly uniform.

Paper context (§1.1, describing Dimakis et al.): geographic gossip routes
to the node nearest a random position; Voronoi-cell bias is corrected by
rejection sampling "to make the distribution roughly uniform on nodes".

Measured here: total-variation distance from uniform before/after
rejection across tuning quantiles, the proposal overhead, and an
empirical check of the sampler against its analytic target distribution.
"""

import numpy as np
import pytest

from _common import emit
from repro.experiments import format_table
from repro.geometry import random_points
from repro.routing import RejectionSampler

N = 512


def test_e13_rejection_uniformity(benchmark):
    quantiles = (1.0, 0.75, 0.5, 0.25, 0.1)

    def experiment():
        positions = random_points(N, np.random.default_rng(239))
        rows = []
        samplers = {}
        for quantile in quantiles:
            sampler = RejectionSampler(positions, reference_quantile=quantile)
            rows.append(
                [
                    quantile,
                    sampler.total_variation_from_uniform(),
                    sampler.expected_proposals(),
                ]
            )
            samplers[quantile] = sampler
        # Empirical check of one mid-range sampler.
        sampler = samplers[0.5]
        rng = np.random.default_rng(241)
        draws = 12_000
        counts = np.zeros(N)
        proposals_used = 0
        for _ in range(draws):
            node, proposals = sampler.sample(rng)
            counts[node] += 1
            proposals_used += proposals
        empirical_tv = 0.5 * np.abs(counts / draws - sampler.target_distribution()).sum()
        return rows, empirical_tv, proposals_used / draws, sampler

    rows, empirical_tv, mean_proposals, sampler = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    emit(
        "e13_rejection",
        format_table(
            ["ref. quantile", "TV from uniform", "E[proposals]"],
            rows,
            title=(
                f"E13  rejection sampling at n={N} "
                f"(quantile 1.0 ≈ no rejection; empirical TV to analytic "
                f"target at q=0.5: {empirical_tv:.4f}, measured proposals/"
                f"draw {mean_proposals:.2f})"
            ),
            precision=4,
        ),
    )
    tvs = [row[1] for row in rows]
    assert all(b <= a + 1e-9 for a, b in zip(tvs, tvs[1:])), (
        "lower quantile must improve uniformity"
    )
    assert tvs[-1] < 0.5 * tvs[0], "rejection should at least halve the bias"
    assert mean_proposals == pytest.approx(sampler.expected_proposals(), rel=0.15)
