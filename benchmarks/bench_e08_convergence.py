"""E8 — convergence traces at fixed n: error vs transmissions.

Paper context (§2.1 problem statement): the algorithms drive
``‖x(t)‖/‖x(0)‖`` below ε; their *trajectories* differ sharply — flat
per-exchange cost but slow mixing (randomized) versus expensive routed
exchanges with complete-graph mixing (geographic, hierarchical).

Measured here: the error reached by each algorithm at shared transmission
budgets on one instance, i.e. vertical slices through the three curves.
"""

import numpy as np

from _common import emit, timed_pedantic
from repro.experiments import ExperimentConfig, format_table, run_convergence

N = 512
EPSILON = 0.05


def test_e08_convergence_traces(benchmark):
    config = ExperimentConfig(
        sizes=(N,), epsilon=EPSILON, trials=1, field="gradient"
    )

    runs = timed_pedantic(
        benchmark,
        "e08_convergence",
        lambda: run_convergence(config, N, trace_thinning=0.01),
        n=N,
        epsilon=EPSILON,
        check_stride=1,
    )

    traces = {run.algorithm: run.result.trace for run in runs}
    budgets = (2_000, 10_000, 50_000, 200_000)
    rows = []
    for budget in budgets:
        row = [budget]
        for name in config.algorithms:
            tx, err = traces[name].as_arrays()
            reached = err[tx <= budget]
            row.append(float(reached.min()) if reached.size else float("nan"))
        rows.append(row)
    final = [
        ["(to ε)", *(traces[name].final_transmissions for name in config.algorithms)]
    ]
    emit(
        "e08_convergence",
        format_table(
            ["tx budget", *config.algorithms],
            rows,
            title=f"E8  best error within a transmission budget (n={N}, gradient field)",
        )
        + "\n\n"
        + format_table(
            ["", *config.algorithms],
            final,
            title=f"E8  transmissions to reach eps={EPSILON}",
        ),
    )

    for run in runs:
        assert run.converged, run.algorithm
        tx, err = run.result.trace.as_arrays()
        assert err[0] == 1.0
        assert err[-1] <= EPSILON
    # Geographic should beat randomized to the target at this size.
    assert (
        traces["geographic"].final_transmissions
        < traces["randomized"].final_transmissions
    )
