"""E8 — convergence traces at fixed n: error vs transmissions.

Paper context (§2.1 problem statement): the algorithms drive
``‖x(t)‖/‖x(0)‖`` below ε; their *trajectories* differ sharply — flat
per-exchange cost but slow mixing (randomized) versus expensive routed
exchanges with complete-graph mixing (geographic, hierarchical).

Measured here: the error reached by each algorithm at shared transmission
budgets on one instance (vertical slices through the three curves, at
stride 1 for maximally dense traces), plus the engine's fast-path
dividend — per-protocol wall clock of the vectorized ``tick_block`` path
(``check_stride=16``: pre-sampled owners/targets, memoized routes)
against the legacy scalar loop on the same instance.
"""

import time

import numpy as np

from _common import emit, emit_timing, timed_pedantic
from repro.engine import build_instance, run_batched
from repro.experiments import (
    ExperimentConfig,
    format_table,
    make_algorithm,
    run_convergence,
    spawn_rng,
)

N = 512
EPSILON = 0.05

#: Fast-path stride for the speedup comparison; large enough that owner
#: sampling, protocol randomness and error checks all amortize.
FAST_STRIDE = 16

#: The tick-driven protocols with vectorized block paths (hierarchical is
#: round-based: the engine passes it through, so there is nothing to
#: compare).
FAST_PATH_PROTOCOLS = ("randomized", "geographic", "spatial")


def test_e08_convergence_traces(benchmark):
    config = ExperimentConfig(
        sizes=(N,), epsilon=EPSILON, trials=1, field="gradient"
    )

    runs = timed_pedantic(
        benchmark,
        "e08_convergence",
        lambda: run_convergence(config, N, trace_thinning=0.01),
        n=N,
        epsilon=EPSILON,
        check_stride=1,
    )

    traces = {run.algorithm: run.result.trace for run in runs}
    budgets = (2_000, 10_000, 50_000, 200_000)
    rows = []
    for budget in budgets:
        row = [budget]
        for name in config.algorithms:
            tx, err = traces[name].as_arrays()
            reached = err[tx <= budget]
            row.append(float(reached.min()) if reached.size else float("nan"))
        rows.append(row)
    final = [
        ["(to ε)", *(traces[name].final_transmissions for name in config.algorithms)]
    ]
    emit(
        "e08_convergence",
        format_table(
            ["tx budget", *config.algorithms],
            rows,
            title=f"E8  best error within a transmission budget (n={N}, gradient field)",
        )
        + "\n\n"
        + format_table(
            ["", *config.algorithms],
            final,
            title=f"E8  transmissions to reach eps={EPSILON}",
        ),
    )

    for run in runs:
        assert run.converged, run.algorithm
        tx, err = run.result.trace.as_arrays()
        assert err[0] == 1.0
        assert err[-1] <= EPSILON
    # Geographic should beat randomized to the target at this size.
    assert (
        traces["geographic"].final_transmissions
        < traces["randomized"].final_transmissions
    )


def test_e08_fast_path_speedup(benchmark):
    """Wall clock of the batched tick path vs the legacy scalar loop.

    One shared instance at n=512; each protocol runs to ε twice — the
    bit-identical stride-1 legacy loop, then the stride-16 block path.
    The timings land in per-protocol ``BENCH_e08_<protocol>.json``
    artifacts for trend tracking.
    """
    config = ExperimentConfig(
        sizes=(N,),
        epsilon=EPSILON,
        trials=1,
        field="gradient",
        algorithms=FAST_PATH_PROTOCOLS,
    )
    graph, values = build_instance(config, N, 0)

    def compare():
        measured = {}
        for name in FAST_PATH_PROTOCOLS:
            seconds = {}
            for stride in (1, FAST_STRIDE):
                algorithm = make_algorithm(name, graph)
                rng = spawn_rng(config.root_seed, "run", name, N, 0)
                start = time.perf_counter()
                result = run_batched(
                    algorithm, values, EPSILON, rng, check_stride=stride
                )
                seconds[stride] = time.perf_counter() - start
                assert result.converged, (name, stride)
            measured[name] = seconds
        return measured

    measured = timed_pedantic(
        benchmark,
        "e08_fast_path",
        compare,
        n=N,
        epsilon=EPSILON,
        check_stride=FAST_STRIDE,
    )

    rows = []
    speedups = {}
    for name, seconds in measured.items():
        speedups[name] = seconds[1] / seconds[FAST_STRIDE]
        emit_timing(
            f"e08_{name}",
            seconds[FAST_STRIDE],
            stride1_seconds=round(seconds[1], 6),
            n=N,
            epsilon=EPSILON,
            check_stride=FAST_STRIDE,
            speedup=round(speedups[name], 3),
        )
        rows.append(
            [name, seconds[1], seconds[FAST_STRIDE], speedups[name]]
        )
    emit(
        "e08_fast_path",
        format_table(
            ["protocol", "stride-1 s", f"stride-{FAST_STRIDE} s", "speedup"],
            rows,
            title=f"E8  batched tick path vs legacy scalar loop (n={N})",
        ),
    )

    # The engine's reason to exist: routed gossip at n >= 500 gets at
    # least 2x from pre-sampled targets + memoized routes (measured ~3.5x
    # for geographic, ~8x spatial, ~5x randomized; asserted with margin).
    assert speedups["geographic"] >= 2.0, speedups
    for name in FAST_PATH_PROTOCOLS:
        assert speedups[name] >= 1.5, (name, speedups)
    benchmark.extra_info.update(
        {f"speedup_{k}": round(v, 2) for k, v in speedups.items()}
    )
