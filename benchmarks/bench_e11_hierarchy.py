"""E11 — hierarchy shape: ℓ ~ log log n levels; the paper's constants.

Paper claims (§4.1, §5): the subdivision rule (nearest even square to
√E#) recurses to ℓ ~ log log n levels under the (log n)^8 threshold, and
the schedule constants (ε_r shrinking by 25·n^{7/2+a}, latencies to the
16th power) are worst-case artifacts.

Measured here: factors/levels/leaf occupancies across n for the practical
threshold; the paper threshold's (trivial) depth at simulable n; and the
literal latency magnitudes — the recorded justification for DESIGN.md's
D5/D6 substitutions.
"""

import math

import numpy as np

from _common import emit
from repro.experiments import format_table
from repro.geometry import random_points
from repro.gossip.hierarchical import AccuracySchedule, latency_schedule
from repro.hierarchy import (
    HierarchyTree,
    paper_leaf_threshold,
    practical_leaf_threshold,
    subdivision_factors,
)


def test_e11_hierarchy_shape(benchmark):
    sizes = (256, 1024, 4096, 16384, 65536, 262144)

    def experiment():
        rows = []
        for n in sizes:
            practical = subdivision_factors(n, practical_leaf_threshold(n))
            paper = subdivision_factors(n, paper_leaf_threshold(n))
            leaf_expected = n / math.prod(practical) if practical else n
            rows.append(
                [
                    n,
                    str(practical),
                    len(practical) + 1,
                    len(paper) + 1,
                    leaf_expected,
                    math.log(max(math.log(n), math.e)),
                ]
            )
        # One realised tree for concreteness.
        tree = HierarchyTree.build(random_points(4096, np.random.default_rng(231)))
        occupancy = tree.occupancy_report()
        # The literal schedule magnitudes at n=1024.
        schedule = AccuracySchedule(n=1024, epsilon0=0.1, delta0=1e-2, a=1.0)
        times = latency_schedule(1024, [36, 4], schedule)
        return rows, occupancy, times

    rows, occupancy, times = benchmark.pedantic(experiment, rounds=1, iterations=1)
    shape_table = format_table(
        [
            "n",
            "factors (practical)",
            "levels ℓ",
            "ℓ at (log n)^8",
            "leaf E#",
            "log log n",
        ],
        rows,
        title="E11  subdivision shape across n",
    )
    occupancy_table = format_table(
        ["depth", "squares", "E#", "min #", "max #", "empty"],
        [
            [r["depth"], r["squares"], r["expected"], r["min"], r["max"], r["empty"]]
            for r in occupancy
        ],
        title="E11  realised tree at n=4096 (practical threshold)",
    )
    latency_note = (
        "E11  literal time(n,r,eps_r,delta_r) at n=1024, factors [36,4]: "
        + ", ".join(f"depth {d}: {t:.2e}" for d, t in enumerate(times))
        + "\n(astronomical => DESIGN.md D5: simulations use practical schedules)"
    )
    emit(
        "e11_hierarchy",
        shape_table + "\n\n" + occupancy_table + "\n\n" + latency_note,
    )
    levels = [row[2] for row in rows]
    assert all(b >= a for a, b in zip(levels, levels[1:])), "ℓ must not shrink"
    assert levels[-1] - levels[0] <= 3, "ℓ grows like log log n (very slowly)"
    assert all(row[3] == 1 for row in rows), "(log n)^8 never splits at these n"
    assert times[0] > 1e30
