"""E14 — ablation: affine vs convex supernode updates; sibling vs global targets.

Paper context: the *contribution* is using non-convex affine combinations
(coefficients Ω(√n)) for supernode exchanges (§1.2); and the recursion of
Observation 1 telescopes only if exchanges stay within the parent square
(DESIGN.md, D1).

Measured here, at a ε tight enough that cross-square mass must move:

* affine (clamped) vs convex supernode updates — convex moves O(1) mass
  per routed exchange instead of O(E#), so it misses the target or pays
  far more;
* sibling vs global `Far` targets — global targets route across the whole
  unit square at every depth, inflating the routed cost per exchange.
"""

import numpy as np

from _common import emit
from repro.experiments import format_table
from repro.gossip.hierarchical import CoefficientMode, HierarchicalGossip, RoundConfig
from repro.graphs import RandomGeometricGraph

N, EPSILON = 512, 0.08


def test_e14_update_rule_ablation(benchmark):
    # hard_cap_factor=3 keeps the intentionally losing configurations short.
    configurations = [
        ("affine + sibling targets (paper)", RoundConfig(hard_cap_factor=3.0)),
        (
            "convex supernode updates",
            RoundConfig(
                coefficient_mode=CoefficientMode.CONVEX, hard_cap_factor=3.0
            ),
        ),
        (
            "global Far targets",
            RoundConfig(sibling_targets=False, hard_cap_factor=3.0),
        ),
    ]

    def experiment():
        rng = np.random.default_rng(251)
        graph = RandomGeometricGraph.sample_connected(N, rng)
        x0 = np.random.default_rng(253).normal(size=N)
        outcomes = {}
        for label, config in configurations:
            algo = HierarchicalGossip(graph, config=config)
            result = algo.run(
                x0, EPSILON, np.random.default_rng(257), max_root_rounds=1
            )
            outcomes[label] = (result, dict(algo.stats.exchanges_by_depth))
        return outcomes

    outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for label, (result, exchanges) in outcomes.items():
        rows.append(
            [
                label,
                result.converged,
                result.error,
                result.total_transmissions,
                result.transmissions.get("far", 0),
                sum(exchanges.values()),
            ]
        )
    emit(
        "e14_ablation_updates",
        format_table(
            [
                "configuration",
                "converged",
                "final error",
                "transmissions",
                "far routing tx",
                "exchanges",
            ],
            rows,
            title=f"E14  update-rule ablation at n={N}, eps={EPSILON} (1 root round)",
            precision=4,
        ),
    )
    paper_result, _ = outcomes["affine + sibling targets (paper)"]
    convex_result, _ = outcomes["convex supernode updates"]
    global_result, _ = outcomes["global Far targets"]
    assert paper_result.converged
    # Convex supernode updates move O(1) mass per exchange: worse target
    # or strictly more transmissions.
    assert (not convex_result.converged) or (
        convex_result.total_transmissions > paper_result.total_transmissions
    )
    # Global targets pay longer routes per deep exchange.
    paper_far_per_exchange = paper_result.transmissions.get("far", 1) / max(
        1, sum(outcomes["affine + sibling targets (paper)"][1].values())
    )
    global_far_per_exchange = global_result.transmissions.get("far", 1) / max(
        1, sum(outcomes["global Far targets"][1].values())
    )
    assert global_far_per_exchange > paper_far_per_exchange
