"""Shared helpers for the benchmark harness.

Every benchmark prints a paper-shaped table (visible with ``pytest -s``)
and also writes it to ``benchmarks/results/<experiment>.txt`` so that
EXPERIMENTS.md can reference concrete artifacts from the latest run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment: str, text: str) -> None:
    """Print a result block and persist it under ``benchmarks/results/``."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
