"""Shared helpers for the benchmark harness.

Every benchmark prints a paper-shaped table (visible with ``pytest -s``)
and also writes it to ``benchmarks/results/<experiment>.txt`` so that
EXPERIMENTS.md can reference concrete artifacts from the latest run.

Timings are additionally persisted machine-readably: one
``benchmarks/results/BENCH_<experiment>.json`` per benchmark, carrying
the measured wall-clock seconds plus free-form metadata (worker counts,
strides, fitted slopes, …).  CI and trend tooling diff these files across
runs to track the perf trajectory.
"""

from __future__ import annotations

import json
import pathlib
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment: str, text: str) -> None:
    """Print a result block and persist it under ``benchmarks/results/``."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")


def emit_timing(experiment: str, seconds: float, **extra) -> None:
    """Persist one benchmark's wall-clock timing as ``BENCH_<experiment>.json``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"experiment": experiment, "seconds": round(seconds, 6), **extra}
    (RESULTS_DIR / f"BENCH_{experiment}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def timed_pedantic(benchmark, experiment: str, fn, **extra):
    """One measured round through pytest-benchmark, with a timing artifact.

    Wraps ``benchmark.pedantic(fn, rounds=1, iterations=1)`` — the harness
    convention for these long-running experiment sweeps — and persists
    pytest-benchmark's own measurement of the round (falling back to wall
    clock around the call if the stats are unavailable), so the JSON trend
    numbers exclude harness overhead.  Returns ``fn``'s result.
    """
    start = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    try:
        elapsed = float(benchmark.stats.stats.total)
    except AttributeError:
        pass
    emit_timing(experiment, elapsed, **extra)
    return result
