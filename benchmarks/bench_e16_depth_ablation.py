"""E16 — ablation: how much does the hierarchy's depth matter?

Paper context (§3 vs §4): one level of squares + perfect inner averaging
already gives the √n-speedup sketch; the recursion to ℓ ~ log log n
levels is what turns Õ(n^1.5) into n^{1+o(1)}.  At simulable n the
interesting question is where the sweet spot sits: leaves that are too
big pay quadratic `Near` costs, leaves that are too small pay routing and
control overhead (and lose occupancy concentration).

Measured here: transmissions-to-ε of the round executor across leaf
thresholds (hence depths ℓ), with the per-category cost split.
"""

import numpy as np

from _common import emit
from repro.experiments import format_table
from repro.gossip.hierarchical import HierarchicalGossip
from repro.graphs import RandomGeometricGraph
from repro.hierarchy import HierarchyTree

N, EPSILON = 512, 0.1
THRESHOLDS = (512.0, 128.0, 48.0, 20.0, 10.0)


def test_e16_depth_ablation(benchmark):
    def experiment():
        from repro.workloads import linear_gradient_field

        rng = np.random.default_rng(331)
        graph = RandomGeometricGraph.sample_connected(N, rng)
        # Gradient field: excites the slow mode, so flat local gossip pays
        # its true quadratic price (i.i.d. noise would hide it).
        x0 = linear_gradient_field(graph.positions, np.random.default_rng(337))
        rows = []
        for threshold in THRESHOLDS:
            tree = HierarchyTree.build(graph.positions, leaf_threshold=threshold)
            algo = HierarchicalGossip(graph, tree=tree)
            result = algo.run(x0, EPSILON, np.random.default_rng(347))
            rows.append(
                [
                    threshold,
                    tree.levels,
                    str(tree.factors),
                    result.total_transmissions,
                    result.transmissions.get("near", 0),
                    result.transmissions.get("far", 0),
                    result.transmissions.get("activation", 0),
                    result.converged,
                ]
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "e16_depth_ablation",
        format_table(
            [
                "leaf threshold",
                "levels ℓ",
                "factors",
                "total tx",
                "near",
                "far",
                "activation",
                "converged",
            ],
            rows,
            title=f"E16  hierarchy depth ablation at n={N}, eps={EPSILON}",
        ),
    )
    converged_rows = [row for row in rows if row[7]]
    assert len(converged_rows) >= 3
    # A flat (single-level, threshold=n) configuration cannot beat every
    # deeper one: Near costs are quadratic in leaf size.
    flat = next(row for row in rows if row[1] == 1)
    best = min(converged_rows, key=lambda row: row[3])
    assert best[1] >= 2, "some hierarchy must beat the flat configuration"
    if flat[7]:
        assert best[3] < flat[3]
