"""E5 — connectivity threshold of G(n, r) (Gupta–Kumar regime).

Paper claim (§1.1/§2.1): ``r = Ω(sqrt(log n / n))`` makes G(n, r)
connected w.h.p.; below the threshold the graph disconnects, which is why
the failure budget δ cannot be driven below n^{-O(1)}.

Measured here: P(connected) across radius multipliers c in
``r = c·sqrt(log n/n)`` and across n at fixed c — the sharp threshold
around c ≈ 1/√π for this parameterisation.
"""

import numpy as np

from _common import emit
from repro.experiments import format_table
from repro.graphs import connectivity_probability, connectivity_radius


def test_e05_connectivity_threshold(benchmark):
    n, trials = 256, 40
    constants = (0.2, 0.4, 0.7, 1.0, 1.5, 2.5)

    def experiment():
        rng = np.random.default_rng(109)
        by_constant = [
            connectivity_probability(
                n, connectivity_radius(n, c), trials, rng
            )
            for c in constants
        ]
        by_size = [
            (m, connectivity_probability(m, connectivity_radius(m, 2.0), 20, rng))
            for m in (64, 256, 1024)
        ]
        return by_constant, by_size

    by_constant, by_size = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table_c = format_table(
        ["c", "P(connected)"],
        [[c, p] for c, p in zip(constants, by_constant)],
        title=f"E5  connectivity of G({n}, c*sqrt(log n/n)), {trials} trials",
    )
    table_n = format_table(
        ["n", "P(connected) at c=2"],
        [[m, p] for m, p in by_size],
        title="E5  fixed generous constant across sizes",
    )
    emit("e05_connectivity", table_c + "\n\n" + table_n)
    assert by_constant[0] < 0.3, "far-subcritical radius should disconnect"
    assert by_constant[-1] > 0.9, "supercritical radius should connect w.h.p."
    assert all(p >= 0.9 for _, p in by_size)
    # Monotone trend across the threshold (allow small MC noise).
    assert by_constant[-1] >= by_constant[0]
