"""E15 — §1.1's observation: biasing target distance is counterproductive.

Paper claim (§1.1): "it appears that the benefit derived from an improved
mixing time with long-range transmissions more than compensates for the
additional cost in terms of hops ...  simply altering the probability
distribution with which a node picks targets seems to be
counterproductive."

Measured here: spatial gossip (Kempe–Kleinberg style targets with
``P(v) ∝ dist^{-ρ}``) across ρ on a gradient field (the slow-mode
workload the asymptotic statements describe).  The paper's remark is
about scaling: strong locality (large ρ) loses decisively, and no
distance bias changes the Õ(n^1.5) order — it can only shave constants.
A *mild* bias (ρ ≈ 1-2) can in fact win small constant factors at small
n (recorded honestly in the table and in EXPERIMENTS.md); the measurable
content of the paper's remark is that the local end is far worse and the
uniform end is within a small factor of the best.
"""

import numpy as np

from _common import emit
from repro.experiments import format_table
from repro.gossip import SpatialGossip
from repro.graphs import RandomGeometricGraph
from repro.workloads import linear_gradient_field

N, EPSILON = 256, 0.1
RHOS = (0.0, 1.0, 2.0, 3.0, 5.0)


def test_e15_spatial_rho_sweep(benchmark):
    def experiment():
        rng = np.random.default_rng(307)
        graph = RandomGeometricGraph.sample_connected(N, rng)
        x0 = linear_gradient_field(graph.positions, np.random.default_rng(311))
        rows = []
        for rho in RHOS:
            result = SpatialGossip(graph, rho=rho).run(
                x0, EPSILON, np.random.default_rng(313)
            )
            rows.append(
                [
                    rho,
                    result.total_transmissions,
                    result.ticks,
                    result.total_transmissions / max(1, result.ticks),
                    result.converged,
                ]
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "e15_spatial_rho",
        format_table(
            ["rho", "transmissions", "exchanges", "tx/exchange", "converged"],
            rows,
            title=(
                f"E15  spatial gossip target bias at n={N}, eps={EPSILON}, "
                "gradient field (rho=0 is uniform/geographic)"
            ),
        ),
    )
    assert all(row[4] for row in rows), "all rho values must converge"
    costs = {row[0]: row[1] for row in rows}
    # Strong locality loses decisively despite its cheap per-hop cost.
    assert costs[RHOS[-1]] > 1.5 * costs[0.0]
    # The uniform end is within a small constant of the best ρ — distance
    # tuning buys no order-of-magnitude win (the paper's point).
    assert costs[0.0] <= 2.0 * min(costs.values())
