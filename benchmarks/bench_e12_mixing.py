"""E12 — the Boyd et al. link: randomized gossip costs Θ(n·T_mix).

Paper context (§1.1): "the number of transmissions made in the course of
the algorithm is Θ(n·T_mix(G))"; on an RGG the averaging matrix's spectral
gap is Θ(r²/n) = Θ(log n/n²), which is the root of the Õ(n²) cost.

Measured here: the spectral gap of W̄ vs the r²/n model, Boyd's tick bound
3·log(1/ε)/gap vs measured ticks, across n.
"""

import numpy as np

from _common import emit
from repro.analysis import averaging_time_bound, spectral_gap
from repro.experiments import format_table
from repro.gossip import RandomizedGossip
from repro.graphs import RandomGeometricGraph

EPSILON = 0.05


def test_e12_mixing_link(benchmark):
    sizes = (64, 128, 256)

    def experiment():
        rows = []
        for n in sizes:
            rng = np.random.default_rng(3000 + n)
            graph = RandomGeometricGraph.sample_connected(n, rng)
            gap = spectral_gap(graph.neighbors)
            model = graph.radius**2 / n
            bound_ticks = averaging_time_bound(graph.neighbors, EPSILON)
            # Gradient field: excites the slow mode the gap describes
            # (i.i.d. noise converges much faster than the bound).
            from repro.workloads import linear_gradient_field

            x0 = linear_gradient_field(
                graph.positions, np.random.default_rng(3100 + n)
            )
            result = RandomizedGossip(graph.neighbors).run(
                x0, EPSILON, np.random.default_rng(3200 + n)
            )
            rows.append(
                [
                    n,
                    gap,
                    gap / model,
                    int(bound_ticks),
                    result.ticks,
                    result.ticks / bound_ticks,
                    result.total_transmissions,
                ]
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "e12_mixing",
        format_table(
            [
                "n",
                "gap(W̄)",
                "gap/(r²/n)",
                "Boyd bound ticks",
                "measured ticks",
                "ratio",
                "transmissions",
            ],
            rows,
            title=f"E12  randomized gossip vs spectral gap (eps={EPSILON})",
            precision=4,
        ),
    )
    for row in rows:
        n, gap, gap_ratio, bound, ticks, ratio, _tx = row
        assert 0.4 < gap_ratio < 3.0, f"gap deviates from Θ(r²/n) at n={n}"
        assert ticks <= 1.5 * bound, "measured ticks far above Boyd's bound"
        assert ticks >= bound / 40.0, "bound suspiciously loose: check wiring"
    # Cost grows clearly superlinearly (the Õ(n²) story).
    assert rows[-1][6] / rows[0][6] > (sizes[-1] / sizes[0]) ** 1.3
