"""E20 — trace overhead: the cost of running under the event recorder.

The observability layer's contract is "zero overhead off, cheap on":
trace-off runs share the untraced code path byte for byte (one module
read and an ``is None`` branch per emission site), and trace-on runs
must stay close enough to untraced wall clock that tracing a sweep is a
routine flag, not a special slow mode.

Measured here, for the slow baseline (randomized) and the routed
workhorse (geographic) at benchmark scale (n=256, stride 16): best-of-3
wall clock of one engine run untraced vs the same run under an active
:class:`~repro.observability.events.TraceRecorder`.  Asserted: the
traced run is bit-identical to the untraced one (values, transmissions,
ticks — the recorder is purely observational), its event stream replays
bitwise through :func:`~repro.observability.replay.replay_events`, and
the trace-on overhead is at most 30%.
"""

import time

import numpy as np

from _common import emit, emit_timing, timed_pedantic
from repro.engine import build_instance, run_batched
from repro.experiments import (
    ExperimentConfig,
    format_table,
    make_algorithm,
    spawn_rng,
)
from repro.observability import capture, replay_events, validate_result

N = 256
EPSILON = 0.1
STRIDE = 16
PROTOCOLS = ("randomized", "geographic")
REPS = 3
OVERHEAD_CEILING = 1.30


def _run(name, graph, values, config, recorder_on: bool):
    """One engine run; returns (result, seconds, events-or-None)."""
    algorithm = make_algorithm(name, graph)
    rng = spawn_rng(config.root_seed, "e20", name)
    if recorder_on:
        with capture() as recorder:
            start = time.perf_counter()
            result = run_batched(
                algorithm, values, EPSILON, rng, check_stride=STRIDE
            )
            seconds = time.perf_counter() - start
        return result, seconds, recorder.events
    start = time.perf_counter()
    result = run_batched(algorithm, values, EPSILON, rng, check_stride=STRIDE)
    seconds = time.perf_counter() - start
    return result, seconds, None


def test_e20_trace_overhead(benchmark):
    config = ExperimentConfig(
        sizes=(N,), epsilon=EPSILON, trials=1, field="random"
    )
    graph, values = build_instance(config, N, 0)

    def measure():
        results = {}
        for name in PROTOCOLS:
            # Best-of-REPS on each side: the identical (seed, stride)
            # run repeats bit for bit, so the minimum isolates the code
            # path cost from scheduler noise.
            untraced = [
                _run(name, graph, values, config, recorder_on=False)
                for _ in range(REPS)
            ]
            traced = [
                _run(name, graph, values, config, recorder_on=True)
                for _ in range(REPS)
            ]
            base_result = untraced[0][0]
            traced_result, _, events = traced[0]

            # Purely observational: the traced run IS the untraced run.
            np.testing.assert_array_equal(
                base_result.values,
                traced_result.values,
                err_msg=f"traced values differ ({name})",
            )
            assert base_result.transmissions == traced_result.transmissions
            assert base_result.ticks == traced_result.ticks
            assert base_result.error == traced_result.error

            # And the captured stream replays the run bitwise.
            validate_result(replay_events(events), traced_result)

            results[name] = {
                "untraced_seconds": min(s for _, s, _ in untraced),
                "traced_seconds": min(s for _, s, _ in traced),
                "events": len(events),
                "ticks": base_result.ticks,
            }
        return results

    results = timed_pedantic(
        benchmark,
        "e20_trace_overhead",
        measure,
        n=N,
        epsilon=EPSILON,
        check_stride=STRIDE,
        reps=REPS,
    )

    rows = []
    ratios = {}
    for name, stats in results.items():
        ratio = stats["traced_seconds"] / stats["untraced_seconds"]
        ratios[name] = ratio
        rows.append(
            [
                name,
                stats["ticks"],
                stats["events"],
                round(stats["untraced_seconds"] * 1e3, 2),
                round(stats["traced_seconds"] * 1e3, 2),
                round(ratio, 3),
            ]
        )
        emit_timing(
            f"e20_{name}",
            stats["traced_seconds"],
            untraced_seconds=round(stats["untraced_seconds"], 6),
            overhead_ratio=round(ratio, 4),
            trace_events=stats["events"],
            n=N,
            epsilon=EPSILON,
            check_stride=STRIDE,
        )
    emit(
        "e20_trace_overhead",
        format_table(
            [
                "protocol",
                "ticks",
                "events",
                "untraced ms",
                "traced ms",
                "overhead",
            ],
            rows,
            title=(
                f"E20  trace-on vs trace-off wall clock "
                f"(n={N}, eps={EPSILON}, stride {STRIDE}, best of {REPS})"
            ),
        ),
    )

    # The acceptance bar: tracing costs at most 30% at stride 16.
    for name in PROTOCOLS:
        assert ratios[name] <= OVERHEAD_CEILING, (name, ratios)
    benchmark.extra_info.update(
        {f"overhead_{k}": round(v, 3) for k, v in ratios.items()}
    )
