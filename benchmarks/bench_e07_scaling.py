"""E7 — the headline: transmissions-to-ε scaling of the three algorithms.

Paper claims (§1.1-§1.2, §5):

* randomized gossip  — Õ(n²) transmissions,
* geographic gossip  — Õ(n^1.5),
* hierarchical affine — n·(log(n/ε))^{O(log log n)} = n^{1+o(1)}.

What is measurable at laptop n (and what is not):

* The randomized-vs-geographic exponent separation is cleanly measurable:
  fitted log-log slopes ≈ 2 − O(1/log n) vs ≈ 1.4-1.6.
* The hierarchical protocol's *asymptotic* exponent is not directly
  measurable at n ≤ 1024: the subdivision rule inserts hierarchy levels
  within the sweep (ℓ jumps 2→3), and each insertion multiplies cost by
  k_r·log(·) — a slope fitted across an insertion measures the jump, not
  the limit (DESIGN.md, D9).  The measured table therefore reports the
  level structure next to each cost, and the asymptotic ordering is
  checked on the closed-form models (`analysis.theory`), whose shapes are
  validated piecewise by E4/E9/E12/E14.

The honest headline: baselines' exponents reproduce quantitatively; the
contribution's mechanism (complete-graph-speed sum mixing at routed cost)
reproduces in E9/E14; its asymptotic win is a model-level statement with
constants that place the crossover far beyond simulable n.
"""

import dataclasses
import math
import os
import time

import numpy as np

from _common import emit, emit_timing, timed_pedantic
from repro.analysis import (
    geographic_gossip_prediction,
    paper_headline_form,
    randomized_gossip_prediction,
)
from repro.experiments import (
    ExperimentConfig,
    fit_loglog_slope,
    format_table,
    run_scaling_sweep,
)
from repro.hierarchy import practical_leaf_threshold, subdivision_factors

# n=1024 crosses a hierarchy-structure jump ([16,4] → [36,4]) whose
# multiplicative log-tower makes single runs take minutes — the very
# effect D9 documents; E16 charts it explicitly.  The sweep stays below
# the jump so every cell runs in seconds.
SIZES = (128, 256, 512)
EPSILON = 0.2

# Grid cells fan across the engine's worker pool; per-cell seed spawning
# makes the numbers identical at any worker count, so parallelism is free.
WORKERS = max(1, min(4, os.cpu_count() or 1))

# Strided error checks ride the vectorized tick_block fast paths (all
# three tick-driven contenders implement them; hierarchical is
# round-based and passes through).  The coarser stopping rule can only
# overshoot the ε-crossing by one check window, which scales like the
# tick count itself — so fitted slopes are unaffected.
CHECK_STRIDE = 4


def test_e07_scaling(benchmark):
    # A gradient field excites the slow eigenmode the worst-case bounds
    # describe; i.i.d. noise would flatter randomized gossip.
    config = ExperimentConfig(
        sizes=SIZES, epsilon=EPSILON, trials=2, field="gradient"
    )

    def sweep_per_protocol():
        """The full grid, one timed per-protocol sweep at a time.

        Cells are identical to one merged sweep (instances depend only on
        ``(n, trial)``); partitioning by protocol is what makes the
        per-protocol wall-clock attributable.
        """
        merged, seconds = {}, {}
        for name in config.algorithms:
            single = dataclasses.replace(config, algorithms=(name,))
            start = time.perf_counter()
            part = run_scaling_sweep(
                single, workers=WORKERS, check_stride=CHECK_STRIDE
            )
            seconds[name] = time.perf_counter() - start
            merged[name] = part[name]
        return merged, seconds

    sweep, protocol_seconds = timed_pedantic(
        benchmark,
        "e07_scaling",
        sweep_per_protocol,
        workers=WORKERS,
        check_stride=CHECK_STRIDE,
        sizes=list(SIZES),
        trials=config.trials,
    )
    for name, seconds in protocol_seconds.items():
        emit_timing(
            f"e07_{name}",
            seconds,
            workers=WORKERS,
            check_stride=CHECK_STRIDE,
            sizes=list(SIZES),
            trials=config.trials,
        )

    rows = []
    for n in SIZES:
        row = [n]
        for name in config.algorithms:
            point = next(p for p in sweep[name] if p.n == n)
            row.append(int(point.transmissions_mean))
        factors = subdivision_factors(n, practical_leaf_threshold(n))
        row.append(str(factors))
        rows.append(row)
    counts_table = format_table(
        ["n", *config.algorithms, "hier. levels"],
        rows,
        title=f"E7  mean transmissions to eps={EPSILON} (2 trials, shared instances)",
    )

    slopes = {}
    for name in config.algorithms:
        points = sweep[name]
        slopes[name] = fit_loglog_slope(
            np.array([p.n for p in points], dtype=float),
            np.array([p.transmissions_mean for p in points]),
        )
    slope_table = format_table(
        ["algorithm", f"measured slope (n={SIZES[0]}..{SIZES[-1]})", "paper exponent"],
        [
            ["randomized", slopes["randomized"], 2.0],
            ["geographic", slopes["geographic"], 1.5],
            [
                "hierarchical",
                slopes["hierarchical"],
                "1+o(1) asymptotic (see note)",
            ],
        ],
        title="E7  fitted log-log slopes",
    )

    # Model-level asymptotic ordering (constants calibrated in E4/E12).
    n_large = 10**8
    model_rows = [
        [
            "randomized model",
            randomized_gossip_prediction(n_large, EPSILON),
            _local_slope(randomized_gossip_prediction, n_large),
        ],
        [
            "geographic model",
            geographic_gossip_prediction(n_large, EPSILON),
            _local_slope(geographic_gossip_prediction, n_large),
        ],
        [
            "paper headline form",
            paper_headline_form(n_large, EPSILON),
            _local_slope(paper_headline_form, n_large),
        ],
    ]
    model_table = format_table(
        ["model at n=1e8", "transmissions", "local slope"],
        model_rows,
        title=(
            "E7  asymptotic ordering (models; hierarchical level-insertions "
            "make the small-n measured slope a jump artifact, DESIGN.md D9)"
        ),
    )
    emit(
        "e07_scaling",
        counts_table + "\n\n" + slope_table + "\n\n" + model_table,
    )

    for name in config.algorithms:
        for point in sweep[name]:
            assert point.converged_fraction == 1.0, (name, point.n)
    # Measured baseline separation — the paper's Õ(n²) vs Õ(n^1.5).
    assert slopes["randomized"] > slopes["geographic"] + 0.2
    assert slopes["randomized"] > 1.6
    assert slopes["geographic"] < 1.75
    # Model-level asymptotic ordering of the three exponents.
    headline = [row[1] for row in model_rows]
    assert headline[2] < headline[1] < headline[0]
    benchmark.extra_info.update({f"slope_{k}": round(v, 3) for k, v in slopes.items()})


def _local_slope(fn, n: int) -> float:
    return float(
        (math.log(fn(2 * n, EPSILON)) - math.log(fn(n, EPSILON))) / math.log(2.0)
    )
