"""E18 — robustness: the gossip lineage under message loss and churn.

The papers discuss this trade-off qualitatively: randomized gossip
(Boyd et al.) is slow but local — an exchange risks only two
transmissions; geographic gossip (Dimakis et al.) routes Õ(√n) hops per
exchange; path averaging (Bénézit et al.) buys its order-optimality with
*long transactions* — one operation spans ``2·hops`` transmissions and a
loss anywhere aborts the whole multi-node averaging.  Under per-hop
message loss the cost of reaching ε should therefore inflate fastest for
path averaging, slower for pairwise geographic, and barely for the
nearest-neighbour baseline.  This benchmark measures that ordering on
shared instances (engine sweep cells with per-cell fault schedules
derived from the root seed) and asserts it.

Also asserted, per the dynamics subsystem's acceptance bar: with the
fault machinery *installed but idle* (a zero spec through
``build_cell_algorithm``), every protocol's run is bit-identical to the
fault-free engine path — values, transmissions, ticks, and every trace
point.

A churn column (crash/recover dynamics at the harshest loss level)
rides along for observability: live-node error and aborted-route counts
land in the emitted table and the ``BENCH_e18_robustness.json`` artifact.
"""

import os
import time

import numpy as np

from _common import emit, emit_timing, timed_pedantic
from repro.dynamics import DynamicGossip, DynamicSubstrate, FaultSpec
from repro.engine.batching import run_batched
from repro.engine.executor import build_instance, run_sweep_records
from repro.experiments import (
    ExperimentConfig,
    format_table,
    make_algorithm,
    spawn_rng,
)

N = 256
EPSILON = 0.15
TRIALS = 3
FIELD = "gradient"
CHECK_STRIDE = 4
WORKERS = max(1, min(4, os.cpu_count() or 1))
ALGORITHMS = ("randomized", "geographic", "path-averaging")
LOSS_LEVELS = (0.0, 0.1, 0.2, 0.3)
CHURN_FAULTS = "churn=0.05,recover=0.2,loss=0.3,epoch=512"


def _config(faults: str) -> ExperimentConfig:
    return ExperimentConfig(
        sizes=(N,),
        epsilon=EPSILON,
        trials=TRIALS,
        field=FIELD,
        algorithms=ALGORITHMS,
        faults=faults,
    )


def _mean_cost(records, name):
    cells = [r for r in records.values() if r.algorithm == name]
    assert len(cells) == TRIALS, (name, len(cells))
    return float(np.mean([r.total_transmissions for r in cells]))


def _mean_fault(records, name, metric):
    cells = [r for r in records.values() if r.algorithm == name]
    return float(np.mean([r.faults[metric] for r in cells]))


def _assert_zero_loss_bit_identity():
    """Idle fault machinery == the fault-free engine path, bit for bit."""
    config = _config("none")
    graph, values = build_instance(config, N, 0)
    for name in ALGORITHMS:
        substrate = DynamicSubstrate(graph, FaultSpec(), seed=2718)
        dynamic = DynamicGossip(make_algorithm(name, substrate), substrate)
        plain = make_algorithm(name, graph)
        left = run_batched(
            dynamic, values, EPSILON,
            spawn_rng(config.root_seed, "e18", name),
            check_stride=CHECK_STRIDE,
        )
        right = run_batched(
            plain, values, EPSILON,
            spawn_rng(config.root_seed, "e18", name),
            check_stride=CHECK_STRIDE,
        )
        assert (left.values == right.values).all(), name
        assert left.transmissions == right.transmissions, name
        assert left.ticks == right.ticks, name
        left_trace = [(p.transmissions, p.ticks, p.error) for p in left.trace.points]
        right_trace = [
            (p.transmissions, p.ticks, p.error) for p in right.trace.points
        ]
        assert left_trace == right_trace, name


def test_e18_robustness(benchmark):
    def robustness():
        timings = {}
        start = time.perf_counter()
        _assert_zero_loss_bit_identity()
        timings["bit_identity"] = time.perf_counter() - start

        start = time.perf_counter()
        by_level = {}
        for loss in LOSS_LEVELS:
            faults = "none" if loss == 0 else f"loss={loss}"
            by_level[loss] = run_sweep_records(
                _config(faults), workers=WORKERS, check_stride=CHECK_STRIDE
            )
        timings["loss_sweep"] = time.perf_counter() - start

        start = time.perf_counter()
        churn_records = run_sweep_records(
            _config(CHURN_FAULTS), workers=WORKERS, check_stride=CHECK_STRIDE
        )
        timings["churn_sweep"] = time.perf_counter() - start
        return by_level, churn_records, timings

    by_level, churn_records, timings = timed_pedantic(
        benchmark,
        "e18_robustness",
        robustness,
        workers=WORKERS,
        check_stride=CHECK_STRIDE,
        n=N,
        trials=TRIALS,
        loss_levels=list(LOSS_LEVELS),
    )
    for stage, seconds in timings.items():
        emit_timing(
            f"e18_{stage}",
            seconds,
            n=N,
            trials=TRIALS,
            check_stride=CHECK_STRIDE,
        )

    baseline = {
        name: _mean_cost(by_level[0.0], name) for name in ALGORITHMS
    }
    factors = {
        loss: {
            name: _mean_cost(by_level[loss], name) / baseline[name]
            for name in ALGORITHMS
        }
        for loss in LOSS_LEVELS
    }

    cost_rows = [
        [loss]
        + [int(_mean_cost(by_level[loss], name)) for name in ALGORITHMS]
        + [round(factors[loss][name], 2) for name in ALGORITHMS]
        for loss in LOSS_LEVELS
    ]
    cost_table = format_table(
        ["loss", *ALGORITHMS, *[f"{a} x" for a in ALGORITHMS]],
        cost_rows,
        title=(
            f"E18  mean transmissions to eps={EPSILON} at n={N} under "
            f"per-hop loss ({TRIALS} trials, shared instances; x = "
            "degradation over loss 0)"
        ),
    )

    churn_rows = []
    for name in ALGORITHMS:
        churn_rows.append(
            [
                name,
                int(_mean_cost(churn_records, name)),
                int(_mean_fault(churn_records, name, "aborted_routes")),
                int(_mean_fault(churn_records, name, "wasted_ticks")),
                round(_mean_fault(churn_records, name, "live_fraction"), 3),
                round(_mean_fault(churn_records, name, "live_node_error"), 3),
            ]
        )
    churn_table = format_table(
        [
            "protocol",
            "transmissions",
            "aborted",
            "wasted ticks",
            "live frac",
            "live-node err",
        ],
        churn_rows,
        title=f"E18  churn + loss ({CHURN_FAULTS!r})",
    )
    emit("e18_robustness", cost_table + "\n\n" + churn_table)

    # The robustness ordering the lineage's papers predict qualitatively:
    # transaction length is fragility.  At every nonzero loss level path
    # averaging's relative degradation exceeds pairwise geographic's,
    # which exceeds the nearest-neighbour baseline's; degradation grows
    # with the loss rate.
    for loss in LOSS_LEVELS[1:]:
        level = factors[loss]
        assert level["path-averaging"] > level["geographic"], (loss, level)
        assert level["geographic"] > level["randomized"], (loss, level)
    worst = factors[LOSS_LEVELS[-1]]
    mild = factors[LOSS_LEVELS[1]]
    for name in ALGORITHMS:
        assert worst[name] > mild[name], (name, factors)
    # Every loss-only cell still converges (the budget doubles under
    # faults); churn cells may legitimately stall on the global criterion.
    for loss in LOSS_LEVELS:
        for record in by_level[loss].values():
            assert record.converged, (loss, record.key)

    benchmark.extra_info.update(
        {
            f"factor_{name}_at_{loss}": round(factors[loss][name], 3)
            for loss in LOSS_LEVELS[1:]
            for name in ALGORITHMS
        }
    )
