"""E6 — occupancy concentration over the √n-square partition.

Paper claim (§3): by Chernoff, every top-level square's occupancy is
within 10% of its expectation w.h.p. — the fact that keeps the induced
sum-coefficients inside Lemma 1's (1/3, 1/2).

Measured here: ``max_i |#(□_i)/E# − 1|`` across n against the union-bound
Chernoff deviation, and the n at which the paper's 1/10 band is actually
reached (it needs E# ≈ thousands — context for the (log n)^8 threshold).
"""

import math

import numpy as np

from _common import emit
from repro.analysis import occupancy_deviation_bound, paper_occupancy_condition
from repro.experiments import format_table
from repro.geometry import random_points


def test_e06_occupancy_concentration(benchmark):
    sizes = (1024, 4096, 16384, 65536, 262144)

    def experiment():
        rows = []
        for n in sizes:
            rng = np.random.default_rng(2000 + n)
            report = paper_occupancy_condition(random_points(n, rng))
            bound = occupancy_deviation_bound(
                report["expected_per_square"],
                report["squares"],
                failure_probability=1.0 / n,
            )
            rows.append(
                [
                    n,
                    report["squares"],
                    report["expected_per_square"],
                    report["max_deviation"],
                    bound,
                    report["paper_condition_holds"],
                ]
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "e06_occupancy",
        format_table(
            [
                "n",
                "squares n1",
                "E# per square",
                "measured max dev",
                "Chernoff bound (δ=1/n)",
                "paper |dev|<0.1",
            ],
            rows,
            title="E6  occupancy concentration over the sqrt(n)-square partition",
        ),
    )
    deviations = [row[3] for row in rows]
    assert all(
        b <= a + 0.05 for a, b in zip(deviations, deviations[1:])
    ), "deviation should shrink with n"
    for row in rows:
        assert row[3] <= row[4], "measured deviation exceeded the Chernoff bound"
    # The 1/10 band needs E# >~ 3·log(2·n1·n)·100; confirm the report is
    # honest about where it holds.
    for row in rows:
        needed = 300.0 * math.log(2 * row[1] * row[0])
        assert row[5] == (row[3] < 0.1)
        if row[2] > needed:
            assert row[5]
