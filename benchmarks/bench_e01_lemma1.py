"""E1 — Lemma 1: affine pairwise updates contract E‖x‖² at (1 − 1/(2n)).

Paper claim (Appendix, Lemma 1): for α_i ∈ (1/3, 1/2) on K_n,
``E[x(t)ᵀx(t)] < (1 − 1/(2n))ᵗ·x(0)ᵀx(0)``.

Measured here: the exact spectral contraction factor of E[AᵀA] on the
mean-zero subspace for a range of n, against both the headline bound and
the proof's sharper constant 1 − 8/(9(n−1)); plus the empirically fitted
decay of the simulated dynamics.
"""

import numpy as np

from _common import emit
from repro.analysis import verify_lemma1
from repro.experiments import format_table
from repro.gossip import AffineGossipKn, sample_alphas
from repro.routing import TransmissionCounter


def _empirical_decay(n: int, alphas, ticks: int, trials: int, rng) -> float:
    """Fitted per-tick factor of mean ‖x‖² over simulated trajectories."""
    ratios = []
    for _ in range(trials):
        algo = AffineGossipKn(n, alphas=alphas)
        x = rng.normal(size=n)
        x -= x.mean()
        start = float((x**2).sum())
        counter = TransmissionCounter()
        for _t in range(ticks):
            algo.tick(int(rng.integers(n)), x, counter, rng)
        ratios.append(float((x**2).sum()) / start)
    return float(np.exp(np.log(np.mean(ratios)) / ticks))


def test_e01_lemma1_contraction(benchmark):
    rng = np.random.default_rng(101)

    def experiment():
        rows = []
        for n in (8, 16, 32, 64, 128):
            alphas = sample_alphas(n, rng)
            verdict = verify_lemma1(alphas)
            empirical = (
                _empirical_decay(n, alphas, ticks=12 * n, trials=60, rng=rng)
                if n <= 64
                else float("nan")
            )
            rows.append(
                [
                    n,
                    verdict["contraction_factor"],
                    empirical,
                    verdict["loose_bound"],
                    verdict["tight_bound"],
                    verdict["satisfies_loose"],
                ]
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "e01_lemma1",
        format_table(
            [
                "n",
                "spectral factor",
                "empirical factor",
                "paper 1-1/2n",
                "proof 1-8/9(n-1)",
                "bound holds",
            ],
            rows,
            title="E1  Lemma 1 per-tick contraction of E||x||^2 (K_n, affine)",
            precision=6,
        ),
    )
    assert all(row[5] for row in rows), "Lemma 1 bound violated"
    benchmark.extra_info["max_factor"] = max(row[1] for row in rows)
