"""E4 — greedy geographic routing: O(sqrt(n/log n)) hops, ~no failures.

Paper claim (§3/§5, citing Dimakis et al.): a long-range exchange between
random nodes takes O(√n) hops w.h.p. at the connectivity radius, i.e.
``≈ distance/r = Θ(sqrt(n/log n))``.

Measured here: mean/95th-percentile hop counts and failure rates across n,
against the ``E[dist]/r`` model, and the fitted exponent of hops vs n
(should be ≈ 0.5 up to the log factor).
"""

import numpy as np

from _common import emit
from repro.analysis.theory import MEAN_UNIFORM_DISTANCE
from repro.experiments import fit_loglog_slope, format_table
from repro.graphs import RandomGeometricGraph
from repro.routing import GreedyRouter


def test_e04_routing_hops(benchmark):
    sizes = (256, 1024, 4096)
    routes_per_size = 400

    def experiment():
        rows = []
        for n in sizes:
            rng = np.random.default_rng(1000 + n)
            graph = RandomGeometricGraph.sample_connected(n, rng)
            router = GreedyRouter(graph)
            hops, failures = [], 0
            for _ in range(routes_per_size):
                source, target = rng.integers(n, size=2)
                result = router.route_to_node(int(source), int(target))
                hops.append(result.hops)
                failures += not result.delivered
            hops = np.array(hops)
            rows.append(
                [
                    n,
                    float(hops.mean()),
                    float(np.percentile(hops, 95)),
                    MEAN_UNIFORM_DISTANCE / graph.radius,
                    failures / routes_per_size,
                ]
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    slope = fit_loglog_slope(
        np.array([row[0] for row in rows], dtype=float),
        np.array([row[1] for row in rows]),
    )
    emit(
        "e04_routing",
        format_table(
            ["n", "mean hops", "p95 hops", "model E[d]/r", "failure rate"],
            rows,
            title=(
                "E4  greedy routing hops at the connectivity radius "
                f"(fitted hops ~ n^{slope:.2f}; paper: n^0.5/sqrt(log n))"
            ),
        ),
    )
    assert 0.35 < slope < 0.65, f"hop scaling exponent {slope} off the sqrt law"
    for row in rows:
        assert row[4] <= 0.01, f"routing failure rate too high at n={row[0]}"
        assert row[1] < 2.5 * row[3], "mean hops far above the distance/r model"
