"""E19 — multi-field amortization: fields/sec of one (n, k) pass vs k runs.

The multi-field engine's motivation in one number: a ``k``-field sweep
cell used to cost ``k`` scalar runs — re-sampling clocks, pair draws and
greedy routes ``k`` times for work that is one row operation per tick.
Running an ``(n, k)`` matrix through a single pass shares all of that
across columns, so throughput in **fields per second** should grow
nearly linearly with ``k``.

Measured here, for the slow baseline (randomized) and the routed
workhorse (geographic): wall clock of one multi-field pass at
``k ∈ {1, 8, 32}`` against ``k`` serial scalar runs on the same instance
(one warmed protocol instance each, stride-8 fast path both ways — the
comparison isolates the multi-field amortization, not the batching one).
Asserted: ≥3× fields/sec at ``k = 32`` for both protocols, and column-0
bit-identity of the multi-field pass against the first serial run (the
golden-trace contract, re-checked here at benchmark scale n=256).
"""

import time

import numpy as np

from _common import emit, emit_timing, timed_pedantic
from repro.engine import build_instance, run_batched
from repro.experiments import (
    ExperimentConfig,
    format_table,
    make_algorithm,
    spawn_rng,
)

N = 256
EPSILON = 0.1
STRIDE = 8
FIELD_COUNTS = (1, 8, 32)
PROTOCOLS = ("randomized", "geographic")
SPEEDUP_FLOOR = 3.0
ASSERT_K = 32


def _field_matrix(values: np.ndarray, k: int) -> np.ndarray:
    """Column 0 is the instance's field; secondaries are pinned draws."""
    columns = [values]
    secondary = np.random.default_rng(1906).normal(size=(len(values), k - 1))
    columns.extend(secondary[:, j] for j in range(k - 1))
    return np.column_stack(columns)


def test_e19_multifield_throughput(benchmark):
    # An i.i.d. ensemble workload: every column is the same kind of field
    # (the "random" benchmark standard), so the serial baseline's cost is
    # genuinely k comparable runs — a mixed-difficulty stack would let
    # easy secondary columns finish early and understate the baseline.
    config = ExperimentConfig(
        sizes=(N,), epsilon=EPSILON, trials=1, field="random"
    )
    graph, values = build_instance(config, N, 0)

    def measure():
        results = {}
        for name in PROTOCOLS:
            per_k = {}
            for k in FIELD_COUNTS:
                matrix = _field_matrix(values, k)

                # One (n, k) pass: every column on shared clocks/routes.
                multi_algorithm = make_algorithm(name, graph)
                rng = spawn_rng(config.root_seed, "e19", name, k)
                start = time.perf_counter()
                multi = run_batched(
                    multi_algorithm, matrix, EPSILON, rng, check_stride=STRIDE
                )
                multi_seconds = time.perf_counter() - start
                assert multi.converged, (name, k)

                # The historical cost: k serial scalar runs (column 0 on
                # the same rng — bit-identity checked below — secondaries
                # on spawned children, exactly the fallback semantics).
                serial_algorithm = make_algorithm(name, graph)
                rng = spawn_rng(config.root_seed, "e19", name, k)
                start = time.perf_counter()
                first = run_batched(
                    serial_algorithm,
                    np.ascontiguousarray(matrix[:, 0]),
                    EPSILON,
                    rng,
                    check_stride=STRIDE,
                )
                assert first.converged, (name, k, "serial column 0")
                # Children spawned after column 0, mirroring the engine's
                # per-column fallback (spawn order preserves bit-identity).
                children = rng.spawn(k - 1) if k > 1 else []
                for j, child in enumerate(children, start=1):
                    serial_run = run_batched(
                        serial_algorithm,
                        np.ascontiguousarray(matrix[:, j]),
                        EPSILON,
                        child,
                        check_stride=STRIDE,
                    )
                    # An unconverged (budget-capped) baseline run would
                    # make serial_seconds an apples-to-oranges number.
                    assert serial_run.converged, (name, k, f"serial col {j}")
                serial_seconds = time.perf_counter() - start

                np.testing.assert_array_equal(
                    multi.values[:, 0],
                    first.values,
                    err_msg=f"column-0 bit-identity broken ({name}, k={k})",
                )
                per_k[k] = (multi_seconds, serial_seconds)
            results[name] = per_k
        return results

    results = timed_pedantic(
        benchmark,
        "e19_multifield",
        measure,
        n=N,
        epsilon=EPSILON,
        check_stride=STRIDE,
        field_counts=list(FIELD_COUNTS),
    )

    rows = []
    speedups = {}
    for name, per_k in results.items():
        for k, (multi_seconds, serial_seconds) in per_k.items():
            multi_rate = k / multi_seconds
            serial_rate = k / serial_seconds
            speedup = serial_seconds / multi_seconds
            if k == ASSERT_K:
                speedups[name] = speedup
            rows.append(
                [name, k, serial_rate, multi_rate, speedup]
            )
        emit_timing(
            f"e19_{name}",
            per_k[ASSERT_K][0],
            serial_seconds=round(per_k[ASSERT_K][1], 6),
            n=N,
            epsilon=EPSILON,
            check_stride=STRIDE,
            fields=ASSERT_K,
            speedup=round(per_k[ASSERT_K][1] / per_k[ASSERT_K][0], 3),
        )
    emit(
        "e19_multifield",
        format_table(
            ["protocol", "k", "serial fields/s", "multi fields/s", "speedup"],
            rows,
            title=(
                f"E19  (n, k) pass vs k serial scalar runs "
                f"(n={N}, eps={EPSILON}, stride {STRIDE})"
            ),
        ),
    )

    # The acceptance bar: one multi-field pass beats k serial runs by at
    # least 3x in fields/sec at k=32 for both protocols (measured far
    # higher — the pass costs barely more than one scalar run).
    for name in PROTOCOLS:
        assert speedups[name] >= SPEEDUP_FLOOR, (name, speedups)
    benchmark.extra_info.update(
        {f"speedup_{k}": round(v, 2) for k, v in speedups.items()}
    )
