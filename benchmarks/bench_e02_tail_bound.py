"""E2 — Corollary 1/2: P(‖x(t)‖ > ε‖x(0)‖) ≤ ε⁻²·(1 − 1/(2n))ᵗ.

Paper claim (Appendix, Corollaries 1 and 2 — Markov on Lemma 1).

Measured here: the empirical exceedance frequency over many simulated
trajectories of the affine dynamics at several horizons t, against the
corollary's bound (clipped to 1).
"""

import numpy as np

from _common import emit
from repro.experiments import format_table
from repro.gossip import AffineGossipKn, sample_alphas
from repro.routing import TransmissionCounter


def test_e02_tail_bound(benchmark):
    n, epsilon, trials = 16, 0.35, 400
    horizons = (2 * n, 8 * n, 16 * n, 32 * n)
    rng = np.random.default_rng(103)
    alphas = sample_alphas(n, rng)

    def experiment():
        exceed = {t: 0 for t in horizons}
        for _ in range(trials):
            algo = AffineGossipKn(n, alphas=alphas)
            x = rng.normal(size=n)
            x -= x.mean()
            start = float(np.linalg.norm(x))
            counter = TransmissionCounter()
            tick = 0
            for t in sorted(horizons):
                while tick < t:
                    algo.tick(int(rng.integers(n)), x, counter, rng)
                    tick += 1
                if float(np.linalg.norm(x - x.mean())) > epsilon * start:
                    exceed[t] += 1
        return exceed

    exceed = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    violations = 0
    for t in horizons:
        bound = min(1.0, epsilon**-2 * (1 - 1 / (2 * n)) ** t)
        rate = exceed[t] / trials
        ok = rate <= bound + 2.5 * np.sqrt(bound * (1 - bound) / trials) + 1e-9
        violations += not ok
        rows.append([t, rate, bound, ok])
    emit(
        "e02_tail_bound",
        format_table(
            ["t (ticks)", "measured P(exceed)", "corollary bound", "holds"],
            rows,
            title=(
                f"E2  tail bound at n={n}, eps={epsilon}, {trials} trials "
                "(bound clipped to 1)"
            ),
            precision=4,
        ),
    )
    assert violations == 0, "Corollary tail bound violated beyond noise"
