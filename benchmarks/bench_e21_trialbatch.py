"""E21 — trial tensorization: one kernel pass vs per-cell tick loops.

The trial-batched executor (:mod:`repro.engine.tensor`) advances all
trials of one ``(protocol, n)`` sweep slice inside a single
``(trials, n)`` state tensor — one batched NumPy call per tick window
instead of ``trials`` independent Python loops.  Its contract is
"faster, not different": every trial extracted from the tensor must be
bit-identical to the legacy per-cell run of the same seed.

Measured here, for the slow baseline (randomized) and the routed
workhorse (geographic) at ``trials=32``: wall clock of 32 per-cell
``run_batched`` runs vs one ``run_trials_batched`` pass on matched
seeds.  Asserted: per-trial bit-identity (values, transmissions ledger,
ticks) and a cells-per-second speedup of at least 3x for both protocols.
"""

import time

import numpy as np

from _common import emit, emit_timing, timed_pedantic
from repro.engine import build_instance, run_batched, run_trials_batched
from repro.experiments import (
    ExperimentConfig,
    format_table,
    make_algorithm,
    spawn_rng,
)

N = 192
EPSILON = 0.3
STRIDE = 16
TRIALS = 32
PROTOCOLS = ("randomized", "geographic")
REPS = 2
SPEEDUP_FLOOR = 3.0


def _seed_rngs(config, name):
    return [
        spawn_rng(config.root_seed, "e21", name, trial)
        for trial in range(TRIALS)
    ]


def _run_per_cell(name, graph, values, config):
    """TRIALS independent engine runs: the sweep's legacy execution."""
    start = time.perf_counter()
    results = [
        run_batched(
            make_algorithm(name, graph),
            values.copy(),
            EPSILON,
            rng,
            check_stride=STRIDE,
        )
        for rng in _seed_rngs(config, name)
    ]
    return results, time.perf_counter() - start


def _run_tensor(name, graph, values, config):
    """The same TRIALS cells as one (trials, n) kernel pass."""
    start = time.perf_counter()
    results = run_trials_batched(
        [make_algorithm(name, graph) for _ in range(TRIALS)],
        [values.copy() for _ in range(TRIALS)],
        EPSILON,
        _seed_rngs(config, name),
        check_stride=STRIDE,
    )
    return results, time.perf_counter() - start


def test_e21_trialbatch(benchmark):
    config = ExperimentConfig(
        sizes=(N,), epsilon=EPSILON, trials=1, field="random"
    )
    graph, values = build_instance(config, N, 0)

    def measure():
        results = {}
        for name in PROTOCOLS:
            # One untimed warmup per side, then best-of-REPS: identical
            # (seed, stride) runs repeat bit for bit, so the minimum
            # isolates code-path cost from allocator/cache cold starts.
            _run_per_cell(name, graph, values, config)
            _run_tensor(name, graph, values, config)
            per_cell = [
                _run_per_cell(name, graph, values, config)
                for _ in range(REPS)
            ]
            tensor = [
                _run_tensor(name, graph, values, config)
                for _ in range(REPS)
            ]
            baseline = per_cell[0][0]
            batched = tensor[0][0]

            # Faster, not different: trial t IS the per-cell run.
            for t in range(TRIALS):
                np.testing.assert_array_equal(
                    batched[t].values,
                    baseline[t].values,
                    err_msg=f"values differ ({name}, trial {t})",
                )
                assert batched[t].transmissions == baseline[t].transmissions
                assert batched[t].ticks == baseline[t].ticks
                assert batched[t].error == baseline[t].error

            results[name] = {
                "per_cell_seconds": min(s for _, s in per_cell),
                "tensor_seconds": min(s for _, s in tensor),
                "ticks": baseline[0].ticks,
            }
        return results

    results = timed_pedantic(
        benchmark,
        "e21_trialbatch",
        measure,
        n=N,
        epsilon=EPSILON,
        check_stride=STRIDE,
        trials=TRIALS,
        reps=REPS,
    )

    rows = []
    speedups = {}
    for name, stats in results.items():
        per_cell_rate = TRIALS / stats["per_cell_seconds"]
        tensor_rate = TRIALS / stats["tensor_seconds"]
        speedup = tensor_rate / per_cell_rate
        speedups[name] = speedup
        rows.append(
            [
                name,
                stats["ticks"],
                round(per_cell_rate, 1),
                round(tensor_rate, 1),
                round(speedup, 2),
            ]
        )
        emit_timing(
            f"e21_{name}",
            stats["tensor_seconds"],
            per_cell_seconds=round(stats["per_cell_seconds"], 6),
            cells_per_sec=round(tensor_rate, 3),
            per_cell_cells_per_sec=round(per_cell_rate, 3),
            speedup=round(speedup, 4),
            n=N,
            epsilon=EPSILON,
            check_stride=STRIDE,
            trials=TRIALS,
        )
    emit(
        "e21_trialbatch",
        format_table(
            ["protocol", "ticks", "cells/s per-cell", "cells/s tensor", "speedup"],
            rows,
            title=(
                f"E21 — trial tensorization, trials={TRIALS}, n={N}, "
                f"stride {STRIDE} (bit-identical per trial)"
            ),
        ),
    )
    for name, speedup in speedups.items():
        assert speedup >= SPEEDUP_FLOOR, (
            f"{name}: tensor pass is only {speedup:.2f}x the per-cell rate "
            f"(floor {SPEEDUP_FLOOR}x)"
        )
