"""E3 — Lemma 2: perturbed affine dynamics stay under the deviation bound.

Paper claim (Appendix, Lemma 2): with antisymmetric per-exchange noise
|ν(t)| < ε_ν,
``P[‖y(t)‖ > n^{a/2}((1−1/2n)^{t/2}‖y(0)‖ + 8√2·n^{3/2}·ε_ν)] ≤ 5/nᵃ``.

Measured here: empirical exceedance rates across noise levels, plus the
bound's decay-vs-noise-floor decomposition at one setting.
"""

import numpy as np

from _common import emit
from repro.analysis import (
    lemma2_bound,
    lemma2_empirical_exceedance,
    lemma2_failure_probability,
)
from repro.experiments import format_table


def test_e03_lemma2(benchmark):
    n, ticks, trials = 16, 600, 60
    noise_levels = (1e-4, 1e-3, 1e-2)

    def experiment():
        rng = np.random.default_rng(107)
        reports = {}
        for noise in noise_levels:
            reports[noise] = lemma2_empirical_exceedance(
                n=n, noise_bound=noise, ticks=ticks, trials=trials, rng=rng
            )
        return reports

    reports = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [
            noise,
            reports[noise]["exceedance_rate"],
            min(1.0, lemma2_failure_probability(n)),
            lemma2_bound(ticks, n, 1.0, noise),
        ]
        for noise in noise_levels
    ]
    emit(
        "e03_lemma2",
        format_table(
            ["noise eps_v", "measured exceedance", "allowed 5/n^a", "bound at t"],
            rows,
            title=f"E3  Lemma 2 at n={n}, t={ticks}, {trials} trials, ||y(0)||=1",
            precision=4,
        ),
    )
    for noise in noise_levels:
        assert (
            reports[noise]["exceedance_rate"] <= reports[noise]["allowed_rate"]
        ), f"Lemma 2 exceedance above budget at noise={noise}"
