"""E22 — metrics overhead: the cost of running fully observed.

The live-metrics layer promises an even tighter bar than tracing (E20):
where the event recorder pays one emission per batch window, the metrics
registry is window-granular *and* pull-based — the route cache's
counters are read only at scrape time, never on the route hot path — and
the span profiler touches :func:`time.perf_counter` twice per window.
So a metrics-and-profiling-on run must cost at most 5% wall clock, an
order tighter than E20's 30% tracing ceiling.

Measured here, for the slow baseline (randomized) and the routed
workhorse (geographic) at benchmark scale (n=512, stride 16): best-of-7
wall clock of one engine run bare vs the same run under an active
:class:`~repro.observability.metrics.MetricsRegistry` *and*
:class:`~repro.observability.profile.SpanProfiler`.  Asserted: the
observed run is bit-identical to the bare one (values, transmissions,
ticks — neither instrument consumes RNG), the registry's tick counter
agrees exactly with the run's tick count, the hotpath table accounts for
the run, and the enabled overhead is at most 5%.

Measured ≈1.00×/1.04× (geographic/randomized) on the reference box —
within noise of free, as the design predicts: the per-*window* cost is
three counter updates and four ``perf_counter`` reads, and the
per-*route*/per-*tick* cost is zero (pull-time collectors).
"""

import time

import numpy as np

from _common import emit, emit_timing, timed_pedantic
from repro.engine import build_instance, run_batched
from repro.experiments import (
    ExperimentConfig,
    format_table,
    make_algorithm,
    spawn_rng,
)
from repro.observability import metrics, profile

#: Benchmark scale: big enough that one run is tens of milliseconds and
#: several windows long, so a 5% bar measures code-path cost rather than
#: scheduler noise on a millisecond-scale run.
N = 512
EPSILON = 0.02
STRIDE = 16
PROTOCOLS = ("randomized", "geographic")
REPS = 7
OVERHEAD_CEILING = 1.05


def _run(name, graph, values, config, observed: bool):
    """One engine run; returns (result, seconds, registry, profiler).

    The observed variant builds the algorithm *inside* the exposed
    scope, exactly as ``execute_cell`` does, so construction-time
    collector registration (the route cache's) is part of what's timed.
    """
    rng = spawn_rng(config.root_seed, "e22", name)
    if observed:
        with metrics.expose() as registry, profile.capture() as profiler:
            start = time.perf_counter()
            algorithm = make_algorithm(name, graph)
            result = run_batched(
                algorithm, values, EPSILON, rng, check_stride=STRIDE
            )
            seconds = time.perf_counter() - start
        return result, seconds, registry, profiler
    start = time.perf_counter()
    algorithm = make_algorithm(name, graph)
    result = run_batched(algorithm, values, EPSILON, rng, check_stride=STRIDE)
    seconds = time.perf_counter() - start
    return result, seconds, None, None


def test_e22_metrics_overhead(benchmark):
    config = ExperimentConfig(
        sizes=(N,), epsilon=EPSILON, trials=1, field="random"
    )
    graph, values = build_instance(config, N, 0)

    def measure():
        results = {}
        for name in PROTOCOLS:
            # Best-of-REPS on each side, with the two sides interleaved
            # so clock drift hits both equally: the identical (seed,
            # stride) run repeats bit for bit, so the minimum isolates
            # the code-path cost from scheduler noise.
            bare, observed = [], []
            for _ in range(REPS):
                bare.append(
                    _run(name, graph, values, config, observed=False)
                )
                observed.append(
                    _run(name, graph, values, config, observed=True)
                )
            base_result = bare[0][0]
            observed_result, _, registry, profiler = observed[0]

            # Purely observational: the observed run IS the bare run.
            np.testing.assert_array_equal(
                base_result.values,
                observed_result.values,
                err_msg=f"observed values differ ({name})",
            )
            assert base_result.transmissions == observed_result.transmissions
            assert base_result.ticks == observed_result.ticks
            assert base_result.error == observed_result.error

            # And the instruments accounted for the run exactly.
            ticks_counted = registry.counter("repro_engine_ticks_total").value(
                algorithm=name
            )
            assert ticks_counted == observed_result.ticks, (
                name,
                ticks_counted,
                observed_result.ticks,
            )
            spans = {row["span"]: row for row in profiler.hotpath_table()}
            assert {"window", "check"} <= set(spans), sorted(spans)

            results[name] = {
                "bare_seconds": min(s for _, s, _, _ in bare),
                "observed_seconds": min(s for _, s, _, _ in observed),
                "windows": spans["window"]["count"],
                "ticks": base_result.ticks,
            }
        return results

    results = timed_pedantic(
        benchmark,
        "e22_metrics_overhead",
        measure,
        n=N,
        epsilon=EPSILON,
        check_stride=STRIDE,
        reps=REPS,
    )

    rows = []
    ratios = {}
    for name, stats in results.items():
        ratio = stats["observed_seconds"] / stats["bare_seconds"]
        ratios[name] = ratio
        rows.append(
            [
                name,
                stats["ticks"],
                stats["windows"],
                round(stats["bare_seconds"] * 1e3, 2),
                round(stats["observed_seconds"] * 1e3, 2),
                round(ratio, 3),
            ]
        )
        emit_timing(
            f"e22_{name}",
            stats["observed_seconds"],
            bare_seconds=round(stats["bare_seconds"], 6),
            overhead_ratio=round(ratio, 4),
            windows=stats["windows"],
            n=N,
            epsilon=EPSILON,
            check_stride=STRIDE,
        )
    emit(
        "e22_metrics_overhead",
        format_table(
            [
                "protocol",
                "ticks",
                "windows",
                "bare ms",
                "observed ms",
                "overhead",
            ],
            rows,
            title=(
                f"E22  metrics+profile-on vs off wall clock "
                f"(n={N}, eps={EPSILON}, stride {STRIDE}, best of {REPS})"
            ),
        ),
    )

    # The acceptance bar: full observation costs at most 5% at stride 16.
    for name in PROTOCOLS:
        assert ratios[name] <= OVERHEAD_CEILING, (name, ratios)
    benchmark.extra_info.update(
        {f"overhead_{k}": round(v, 3) for k, v in ratios.items()}
    )
