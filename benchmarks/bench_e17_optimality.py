"""E17 — the optimality context: every node must transmit at least once.

Paper claim (§1.2): "The exponent 1 + o(1) is asymptotically optimal,
since every node must make at least one transmission for an averaging
algorithm to work."

Measured here: the trivial lower bound ``n``, the coordinated
spanning-tree aggregation reference (``3n − 2`` transmissions, exact
average — what the bound costs to approach when a root and tree state are
allowed), and each gossip algorithm's multiple over the bound.  The
hierarchical protocol's claim is that this multiple is ``n^{o(1)}``
rather than ``n^{0.5}`` or ``n``.
"""

import numpy as np

from _common import emit
from repro.experiments import ExperimentConfig, format_table, run_convergence
from repro.gossip import transmission_lower_bound, tree_aggregate
from repro.graphs import RandomGeometricGraph

N, EPSILON = 512, 0.2


def test_e17_optimality_reference(benchmark):
    config = ExperimentConfig(
        sizes=(N,), epsilon=EPSILON, trials=1, field="gradient"
    )

    def experiment():
        runs = run_convergence(config, N)
        graph_rng = np.random.default_rng(353)
        graph = RandomGeometricGraph.sample_connected(N, graph_rng)
        values = np.random.default_rng(359).normal(size=N)
        tree_result = tree_aggregate(graph.neighbors, values)
        return runs, tree_result

    runs, tree_result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    bound = transmission_lower_bound(N)
    rows = [["lower bound (n sends)", bound, 1.0, "exact n/a"]]
    rows.append(
        [
            "tree aggregation (coordinated)",
            tree_result.transmissions,
            tree_result.transmissions / bound,
            "exact",
        ]
    )
    for run in runs:
        rows.append(
            [
                run.algorithm + " (gossip)",
                run.transmissions,
                run.transmissions / bound,
                f"ε={EPSILON}",
            ]
        )
    emit(
        "e17_optimality",
        format_table(
            ["scheme", "transmissions", "× lower bound", "accuracy"],
            rows,
            title=f"E17  distance from the n-transmission lower bound (n={N})",
        ),
    )
    assert tree_result.exact
    assert tree_result.transmissions == 3 * N - 2
    for run in runs:
        assert run.converged
        assert run.transmissions > bound, "no gossip can beat the lower bound"
