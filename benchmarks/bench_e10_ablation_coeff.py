"""E10 — ablation: the affine coefficient rule vs occupancy concentration.

Paper context (§3, D4 in DESIGN.md): the literal coefficient (2/5)·E#(□)
induces sum-coefficients α = (2/5)·E#/# that sit inside Lemma 1's
(1/3, 1/2) *only because* occupancies concentrate — guaranteed by the
(log n)^8 leaf threshold.  At simulation-scale leaf sizes the
concentration fails for a visible fraction of leaves, α can exceed 1, and
the literal rule destabilises; the clamped/actual-min variants stay safe.

Measured here: per coefficient mode and leaf threshold — the fraction of
leaves with #/E# outside [0.8, 1.2] (α outside ≈ (1/3, 1/2)), final error
and convergence.
"""

import numpy as np

from _common import emit
from repro.experiments import format_table
from repro.gossip.hierarchical import CoefficientMode, HierarchicalGossip, RoundConfig
from repro.graphs import RandomGeometricGraph
from repro.hierarchy import HierarchyTree

N, EPSILON = 256, 0.15


def _violation_fraction(tree) -> float:
    leaves = [leaf for leaf in tree.leaves() if leaf.occupancy > 0]
    bad = sum(
        1 for leaf in leaves if not 0.8 <= leaf.occupancy_ratio <= 1.2
    )
    return bad / len(leaves)


def test_e10_coefficient_ablation(benchmark):
    def experiment():
        rng = np.random.default_rng(223)
        graph = RandomGeometricGraph.sample_connected(N, rng)
        x0 = np.random.default_rng(227).normal(size=N)
        trees = {
            "default leaves": HierarchyTree.build(graph.positions),
            "tiny leaves (t=6)": HierarchyTree.build(
                graph.positions, leaf_threshold=6.0
            ),
        }
        rows = []
        outcomes = {}
        for tree_name, tree in trees.items():
            for mode in (
                CoefficientMode.PAPER_EXPECTED,
                CoefficientMode.CLAMPED,
                CoefficientMode.ACTUAL_MIN,
            ):
                # hard_cap_factor=1.5 keeps intentionally diverging runs
                # short — the verdict is visible within prescribed counts.
                algo = HierarchicalGossip(
                    graph,
                    tree=tree,
                    config=RoundConfig(coefficient_mode=mode, hard_cap_factor=1.5),
                )
                result = algo.run(
                    x0, EPSILON, np.random.default_rng(229), max_root_rounds=1
                )
                rows.append(
                    [
                        tree_name,
                        mode.value,
                        _violation_fraction(tree),
                        result.error,
                        result.converged,
                        result.total_transmissions,
                    ]
                )
                outcomes[(tree_name, mode)] = result
        return rows, outcomes

    rows, outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Spectral instability check: take the *measured* tiny-leaf occupancy
    # ratios, form the induced sum-coefficients α_i = (2/5)·E#/#_i of the
    # literal rule, and compute the exact expected contraction factor.
    # With enough α_i ≥ 1 the dynamics stop being a contraction — the
    # deterministic core of the paper's concentration requirement.
    from repro.analysis import contraction_factor

    rng = np.random.default_rng(223)
    graph = RandomGeometricGraph.sample_connected(N, rng)
    tiny_tree = HierarchyTree.build(graph.positions, leaf_threshold=6.0)
    leaves = [leaf for leaf in tiny_tree.leaves() if leaf.occupancy > 0]
    literal_alphas = np.array(
        [0.4 / leaf.occupancy_ratio for leaf in leaves]
    )
    clamped_alphas = np.minimum(literal_alphas, 0.48)
    literal_factor = contraction_factor(literal_alphas)
    clamped_factor = contraction_factor(clamped_alphas)

    emit(
        "e10_ablation_coeff",
        format_table(
            [
                "leaf regime",
                "coefficient mode",
                "α-violating leaves",
                "final error",
                "converged",
                "transmissions",
            ],
            rows,
            title=f"E10  coefficient-rule ablation at n={N}, eps={EPSILON}",
            precision=4,
        )
        + (
            f"\n\nE10  spectral check on the measured tiny-leaf occupancies: "
            f"literal-rule E[contraction] factor = {literal_factor:.5f}, "
            f"clamped = {clamped_factor:.5f} "
            f"(max literal α = {literal_alphas.max():.2f}; a factor ≥ 1 "
            "means the exchange dynamics are no longer a contraction)"
        ),
    )
    # Clamped mode must converge in both regimes.
    for tree_name in ("default leaves", "tiny leaves (t=6)"):
        assert outcomes[(tree_name, CoefficientMode.CLAMPED)].converged, tree_name
    # Tiny leaves violate the concentration band far more often.
    violations = {row[0]: row[2] for row in rows}
    assert (
        violations["tiny leaves (t=6)"] > violations["default leaves"] + 0.2
    )
    # The spectral verdict: the literal rule's expected dynamics on the
    # measured occupancies are strictly worse than the clamped rule's, and
    # some induced α exceed 1 (locally expansive exchanges).
    assert literal_alphas.max() > 1.0
    assert literal_factor > clamped_factor
